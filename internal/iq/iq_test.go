package iq

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]complex128, 10000)
	for i := range samples {
		samples[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	h := Header{SampleRateHz: 80e6, CenterFreqHz: 24e9, Meta: `{"mod":"ook"}`}
	var buf bytes.Buffer
	if err := Write(&buf, h, samples); err != nil {
		t.Fatal(err)
	}
	got, out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header %+v, want %+v", got, h)
	}
	if len(out) != len(samples) {
		t.Fatalf("count %d, want %d", len(out), len(samples))
	}
	// float32 storage: round-trip within float32 precision.
	for i := range samples {
		if math.Abs(real(out[i])-real(samples[i])) > 1e-6 ||
			math.Abs(imag(out[i])-imag(samples[i])) > 1e-6 {
			t.Fatalf("sample %d: %v vs %v", i, out[i], samples[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, meta string) bool {
		if len(meta) > 1000 {
			meta = meta[:1000]
		}
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 5000
		samples := make([]complex128, n)
		for i := range samples {
			samples[i] = complex(rng.Float64(), -rng.Float64())
		}
		var buf bytes.Buffer
		if err := Write(&buf, Header{SampleRateHz: 1e6, Meta: meta}, samples); err != nil {
			return false
		}
		h, out, err := Read(&buf)
		return err == nil && h.Meta == meta && len(out) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{SampleRateHz: 1e6}, nil); err != nil {
		t.Fatal(err)
	}
	_, out, err := Read(&buf)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty capture: %v, %d samples", err, len(out))
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{SampleRateHz: 0}, nil); err == nil {
		t.Fatal("zero sample rate must error")
	}
	big := make([]byte, maxMetaLen+1)
	if err := Write(&buf, Header{SampleRateHz: 1, Meta: string(big)}, nil); err == nil {
		t.Fatal("oversized metadata must error")
	}
}

func TestReadBadMagic(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte("NOPE----------------------------"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err %v, want ErrBadMagic", err)
	}
}

func TestReadBadVersion(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf, Header{SampleRateHz: 1e6}, nil)
	raw := buf.Bytes()
	raw[4] = 0xFF // clobber version
	if _, _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err %v, want ErrBadVersion", err)
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	samples := make([]complex128, 100)
	Write(&buf, Header{SampleRateHz: 1e6, Meta: "m"}, samples)
	raw := buf.Bytes()
	for _, cut := range []int{0, 3, 10, 20, 30, len(raw) - 5} {
		if _, _, err := Read(bytes.NewReader(raw[:cut])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err %v, want ErrTruncated", cut, err)
		}
	}
}

func TestReadAbsurdCounts(t *testing.T) {
	// Corrupt the sample count to something enormous: must error, not
	// allocate.
	var buf bytes.Buffer
	Write(&buf, Header{SampleRateHz: 1e6}, nil)
	raw := buf.Bytes()
	// count is the last 8 bytes for an empty capture with empty meta.
	for i := len(raw) - 8; i < len(raw); i++ {
		raw[i] = 0xFF
	}
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("absurd count must error")
	}
	// Corrupt the metadata length similarly.
	var buf2 bytes.Buffer
	Write(&buf2, Header{SampleRateHz: 1e6}, nil)
	raw2 := buf2.Bytes()
	// metaLen lives at bytes 24-27 (after the 4-byte magic + 20 scalar
	// bytes).
	raw2[24], raw2[25], raw2[26], raw2[27] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := Read(bytes.NewReader(raw2)); err == nil {
		t.Fatal("absurd metadata length must error")
	}
}

func BenchmarkWrite64k(b *testing.B) {
	samples := make([]complex128, 65536)
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Write(&buf, Header{SampleRateHz: 80e6}, samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead64k(b *testing.B) {
	samples := make([]complex128, 65536)
	var buf bytes.Buffer
	Write(&buf, Header{SampleRateHz: 80e6}, samples)
	raw := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Read(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
