// Package iq defines a small binary container for complex baseband
// captures — the record/replay format the tooling uses to save
// synthesized uplink waveforms and feed them back through the AP
// demodulator, the workflow an SDR-based deployment would use with real
// recordings.
//
// Layout (little endian):
//
//	magic   [4]byte  "MMIQ"
//	version uint16   (currently 1)
//	flags   uint16   (reserved, zero)
//	sampleRateHz float64
//	centerFreqHz float64
//	metaLen uint32
//	meta    [metaLen]byte (UTF-8, free-form)
//	count   uint64   number of complex samples
//	samples count × (float32 I, float32 Q)
//
// DESIGN.md: section 3 (module inventory).
package iq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Magic identifies capture files.
var Magic = [4]byte{'M', 'M', 'I', 'Q'}

// Version is the current container version.
const Version uint16 = 1

// maxMetaLen bounds metadata so corrupt headers cannot trigger huge
// allocations.
const maxMetaLen = 1 << 20

// Header describes a capture.
type Header struct {
	SampleRateHz float64
	CenterFreqHz float64
	Meta         string
}

// Errors.
var (
	ErrBadMagic   = errors.New("iq: bad magic (not an MMIQ capture)")
	ErrBadVersion = errors.New("iq: unsupported container version")
	ErrTruncated  = errors.New("iq: truncated capture")
)

// Write serializes a complete capture.
func Write(w io.Writer, h Header, samples []complex128) error {
	if h.SampleRateHz <= 0 {
		return fmt.Errorf("iq: sample rate must be positive, got %g", h.SampleRateHz)
	}
	if len(h.Meta) > maxMetaLen {
		return fmt.Errorf("iq: metadata too large (%d bytes)", len(h.Meta))
	}
	if _, err := w.Write(Magic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	var scalars [2 + 2 + 8 + 8 + 4]byte
	le.PutUint16(scalars[0:], Version)
	le.PutUint16(scalars[2:], 0) // flags
	le.PutUint64(scalars[4:], math.Float64bits(h.SampleRateHz))
	le.PutUint64(scalars[12:], math.Float64bits(h.CenterFreqHz))
	le.PutUint32(scalars[20:], uint32(len(h.Meta)))
	if _, err := w.Write(scalars[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, h.Meta); err != nil {
		return err
	}
	var cnt [8]byte
	le.PutUint64(cnt[:], uint64(len(samples)))
	if _, err := w.Write(cnt[:]); err != nil {
		return err
	}
	buf := make([]byte, 8*4096)
	for off := 0; off < len(samples); {
		n := len(samples) - off
		if n > 4096 {
			n = 4096
		}
		for i := 0; i < n; i++ {
			s := samples[off+i]
			le.PutUint32(buf[i*8:], math.Float32bits(float32(real(s))))
			le.PutUint32(buf[i*8+4:], math.Float32bits(float32(imag(s))))
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Read parses a complete capture.
func Read(r io.Reader) (Header, []complex128, error) {
	var h Header
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return h, nil, wrapTrunc(err)
	}
	if magic != Magic {
		return h, nil, ErrBadMagic
	}
	le := binary.LittleEndian
	var scalars [24]byte
	if _, err := io.ReadFull(r, scalars[:]); err != nil {
		return h, nil, wrapTrunc(err)
	}
	if v := le.Uint16(scalars[0:]); v != Version {
		return h, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	h.SampleRateHz = math.Float64frombits(le.Uint64(scalars[4:]))
	h.CenterFreqHz = math.Float64frombits(le.Uint64(scalars[12:]))
	metaLen := le.Uint32(scalars[20:])
	if metaLen > maxMetaLen {
		return h, nil, fmt.Errorf("iq: metadata length %d exceeds limit", metaLen)
	}
	meta := make([]byte, metaLen)
	if _, err := io.ReadFull(r, meta); err != nil {
		return h, nil, wrapTrunc(err)
	}
	h.Meta = string(meta)
	var cnt [8]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return h, nil, wrapTrunc(err)
	}
	count := le.Uint64(cnt[:])
	const maxSamples = 1 << 28 // 256M samples = 2 GiB; sanity bound
	if count > maxSamples {
		return h, nil, fmt.Errorf("iq: sample count %d exceeds limit", count)
	}
	samples := make([]complex128, 0, count)
	buf := make([]byte, 8*4096)
	remaining := int(count)
	for remaining > 0 {
		n := remaining
		if n > 4096 {
			n = 4096
		}
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return h, nil, wrapTrunc(err)
		}
		for i := 0; i < n; i++ {
			re := math.Float32frombits(le.Uint32(buf[i*8:]))
			im := math.Float32frombits(le.Uint32(buf[i*8+4:]))
			samples = append(samples, complex(float64(re), float64(im)))
		}
		remaining -= n
	}
	return h, samples, nil
}

func wrapTrunc(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrTruncated
	}
	return err
}
