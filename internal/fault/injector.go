package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mmtag/internal/mac"
	"mmtag/internal/obs"
	"mmtag/internal/par"
	"mmtag/internal/rfmath"
)

// Stream coordinates: each (fault kind, tag ID) pair owns a private
// RNG stream seeded by par.Derive(runSeed, kind<<8|tag). Kinds start at
// 1 so the coordinates never collide with the small shard indices the
// sweep layer derives replicate seeds from.
const (
	kindBlockage = 1 + iota
	kindDeath
	kindBrownout
	kindAckLoss
	kindSNRNoise
)

func streamFor(seed int64, kind int, tagID uint8) *rand.Rand {
	return par.Rand(seed, uint64(kind)<<8|uint64(tagID))
}

// Event reports one fault transition for tracing.
type Event struct {
	// T is the simulation time of the transition (for lazily observed
	// transitions such as brownout edges, the time it was noticed).
	T float64
	// Tag is the affected tag.
	Tag uint8
	// Kind names the fault process ("blockage", "death", "brownout").
	Kind string
	// Detail is a short human-readable annotation.
	Detail string
}

// Stats counts injected faults.
type Stats struct {
	// BlockageTransitions counts Gilbert–Elliott state flips observed.
	BlockageTransitions int
	// Deaths counts tags whose permanent death the run reached.
	Deaths int
	// BrownoutTransitions counts awake/starved edges observed.
	BrownoutTransitions int
	// AcksDropped counts AP→tag ACKs the feedback path lost.
	AcksDropped int
	// SNRCorrupted counts SNR queries answered with a corrupted value.
	SNRCorrupted int
}

// tagFault is one tag's private fault state.
type tagFault struct {
	// Gilbert–Elliott chain, advanced lazily against the clock.
	blocked  bool
	nextFlip float64
	blockRNG *rand.Rand

	deathT    float64 // +Inf when the tag survives the run
	deathSeen bool

	phase   float64 // brownout phase offset in [0, PeriodS)
	starved bool    // last observed brownout state

	ackRNG *rand.Rand
	snrRNG *rand.Rand
}

// Injector applies a Plan by wrapping a mac.Medium: the MAC sees the
// faulted radio, the inner medium stays pristine. An Injector is
// single-run state — build a fresh one per scenario (they are cheap)
// and never share one across goroutines. Determinism: all draws come
// from per-(kind, tag) streams derived from the seed, and the
// Gilbert–Elliott chains advance on the simulation clock, so a run's
// fault history is a pure function of (seed, plan, query sequence).
type Injector struct {
	plan    Plan
	inner   mac.Medium
	now     func() float64
	onEvent func(Event)
	tags    map[uint8]*tagFault
	duty    float64 // brownout awake fraction
	stats   Stats
	m       *injectorMetrics
}

type injectorMetrics struct {
	events *obs.CounterVec // fault_events_total{kind}
	acks   *obs.Counter    // fault_ack_drops_total
}

// NewInjector builds the per-run fault state for every tag the inner
// medium knows about. The seed should be the run's root seed; fault
// streams are derived from it, so they are independent of the MAC's own
// contention/PER stream.
func NewInjector(plan Plan, seed int64, inner mac.Medium) (*Injector, error) {
	if inner == nil {
		return nil, fmt.Errorf("fault: inner medium is required")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.Blockage != nil {
		plan.Blockage = plan.Blockage.withDefaults()
	}
	if plan.Death != nil {
		plan.Death = plan.Death.withDefaults()
	}
	if plan.Brownout != nil {
		plan.Brownout = plan.Brownout.withDefaults()
	}
	x := &Injector{
		plan:  plan,
		inner: inner,
		now:   func() float64 { return 0 },
		tags:  make(map[uint8]*tagFault),
	}
	if plan.Brownout != nil {
		x.duty = plan.Brownout.DutyCycle()
	}
	ids := append([]uint8(nil), inner.Tags()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		tf := &tagFault{deathT: math.Inf(1)}
		if b := plan.Blockage; b != nil {
			tf.blockRNG = streamFor(seed, kindBlockage, id)
			tf.nextFlip = expDraw(tf.blockRNG, b.MeanClearS)
		}
		if d := plan.Death; d != nil {
			rng := streamFor(seed, kindDeath, id)
			if rng.Float64() < d.Prob {
				tf.deathT = expDraw(rng, d.MeanLifetimeS)
			}
		}
		if b := plan.Brownout; b != nil {
			rng := streamFor(seed, kindBrownout, id)
			tf.phase = rng.Float64() * b.PeriodS
		}
		if plan.AckLoss != nil {
			tf.ackRNG = streamFor(seed, kindAckLoss, id)
		}
		if plan.SNRNoise != nil {
			tf.snrRNG = streamFor(seed, kindSNRNoise, id)
		}
		x.tags[id] = tf
	}
	return x, nil
}

// expDraw samples an exponential dwell with the given mean (degenerate
// zero-mean dwells collapse to instant flips, bounded below to keep the
// chain advancing).
func expDraw(rng *rand.Rand, mean float64) float64 {
	d := rng.ExpFloat64() * mean
	if d < 1e-9 {
		d = 1e-9
	}
	return d
}

// SetClock wires the simulation clock the time-driven faults (blockage
// chains, death, brownout) advance against. Queries must come with
// non-decreasing time; the lazily advanced chains depend on it.
func (x *Injector) SetClock(now func() float64) {
	if now != nil {
		x.now = now
	}
}

// OnEvent registers a transition callback (tracing). Nil disables.
func (x *Injector) OnEvent(fn func(Event)) { x.onEvent = fn }

// Instrument meters fault activity into the registry. Nil no-ops.
func (x *Injector) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	x.m = &injectorMetrics{
		events: reg.CounterVec("fault_events_total",
			"Fault transitions injected, by fault kind.", "kind"),
		acks: reg.Counter("fault_ack_drops_total",
			"AP→tag ACKs dropped by the fault plan."),
	}
}

// Stats returns the fault counters accumulated so far.
func (x *Injector) Stats() Stats { return x.stats }

// Plan returns the effective plan (defaults resolved).
func (x *Injector) Plan() Plan { return x.plan }

// DeadBy returns the IDs of tags whose permanent death time is at or
// before t, sorted ascending.
func (x *Injector) DeadBy(t float64) []uint8 {
	var out []uint8
	for id, tf := range x.tags {
		// deathT is +Inf for survivors, so the comparison must exclude
		// it even when the caller passes t = +Inf.
		if !math.IsInf(tf.deathT, 1) && tf.deathT <= t {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (x *Injector) emit(t float64, id uint8, kind, detail string) {
	if x.m != nil {
		x.m.events.With(kind).Inc()
	}
	if x.onEvent != nil {
		x.onEvent(Event{T: t, Tag: id, Kind: kind, Detail: detail})
	}
}

// Tags implements mac.Medium. Dead tags stay listed — the MAC must
// discover absence the hard way, by probes going unanswered.
func (x *Injector) Tags() []uint8 { return x.inner.Tags() }

// SNR implements mac.Medium: the inner link budget filtered through the
// plan's fault processes at the current simulation time.
func (x *Injector) SNR(tagID uint8, beamRad float64, r mac.Rate) (float64, bool) {
	t := x.now()
	tf := x.tags[tagID]
	if tf == nil {
		// A tag placed after the injector was built carries no fault
		// state; pass it through untouched.
		return x.inner.SNR(tagID, beamRad, r)
	}
	if x.dead(tf, tagID, t) || x.starved(tf, tagID, t) {
		return 0, false
	}
	snr, audible := x.inner.SNR(tagID, beamRad, r)
	if !audible {
		return 0, false
	}
	if b := x.plan.Blockage; b != nil && x.blockedAt(tf, tagID, t) {
		snr *= rfmath.FromDB(-b.AttenuationDB)
	}
	if s := x.plan.SNRNoise; s != nil && s.SigmaDB > 0 {
		snr *= rfmath.FromDB(tf.snrRNG.NormFloat64() * s.SigmaDB)
		x.stats.SNRCorrupted++
	}
	return snr, true
}

// AckLost implements mac.AckLossMedium: whether the ACK for a frame
// just delivered by tagID fails to reach the tag.
func (x *Injector) AckLost(tagID uint8) bool {
	a := x.plan.AckLoss
	if a == nil || a.Prob <= 0 {
		return false
	}
	tf := x.tags[tagID]
	if tf == nil {
		return false
	}
	if tf.ackRNG.Float64() >= a.Prob {
		return false
	}
	x.stats.AcksDropped++
	if x.m != nil {
		x.m.acks.Inc()
	}
	return true
}

// dead reports (and on first observation, announces) permanent death.
func (x *Injector) dead(tf *tagFault, id uint8, t float64) bool {
	if t < tf.deathT {
		return false
	}
	if !tf.deathSeen {
		tf.deathSeen = true
		x.stats.Deaths++
		x.emit(tf.deathT, id, "death", "permanent")
	}
	return true
}

// starved reports whether the tag is browned out at t: awake for the
// duty-cycle fraction of each period, starved for the rest, with the
// tag's private phase offset.
func (x *Injector) starved(tf *tagFault, id uint8, t float64) bool {
	b := x.plan.Brownout
	if b == nil {
		return false
	}
	var out bool
	switch {
	case x.duty >= 1:
		out = false
	case x.duty <= 0:
		out = true
	default:
		pos := math.Mod(t-tf.phase, b.PeriodS)
		if pos < 0 {
			pos += b.PeriodS
		}
		out = pos >= x.duty*b.PeriodS
	}
	if out != tf.starved {
		tf.starved = out
		x.stats.BrownoutTransitions++
		detail := "awake"
		if out {
			detail = fmt.Sprintf("starved (duty %.2f)", x.duty)
		}
		x.emit(t, id, "brownout", detail)
	}
	return out
}

// blockedAt advances the tag's Gilbert–Elliott chain to t and returns
// its state. Flips are consumed in time order from the tag's private
// stream, so the chain's whole trajectory is fixed at seed time.
func (x *Injector) blockedAt(tf *tagFault, id uint8, t float64) bool {
	b := x.plan.Blockage
	for t >= tf.nextFlip {
		at := tf.nextFlip
		tf.blocked = !tf.blocked
		x.stats.BlockageTransitions++
		mean := b.MeanClearS
		detail := "end"
		if tf.blocked {
			mean = b.MeanBlockedS
			detail = fmt.Sprintf("start %.0f dB", b.AttenuationDB)
		}
		tf.nextFlip = at + expDraw(tf.blockRNG, mean)
		x.emit(at, id, "blockage", detail)
	}
	return tf.blocked
}
