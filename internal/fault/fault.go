// Package fault is the simulator's deterministic fault-injection
// substrate. A Plan declares which impairments a run suffers —
// Gilbert–Elliott burst blockage, permanent tag death, transient
// energy-harvest brownout, ACK loss on the AP→tag feedback path, and
// SNR-estimate corruption — and an Injector applies the plan by
// wrapping the MAC's Medium view of the radio.
//
// Every fault draws its randomness from a private RNG stream derived
// via par.Derive from the run seed and the fault's grid coordinates
// (fault kind × tag ID), never from wall-clock time or scheduling
// order. Two runs with the same seed and the same plan therefore
// produce byte-identical results at any -parallel width: the streams
// exist independently of which worker executes the run and of how many
// queries other tags' faults answered first.
//
// DESIGN.md: section 3 (module inventory); drives the chaos-soak
// experiments R1-R3 of section 4.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mmtag/internal/rfmath"
	"mmtag/internal/tag"
)

// BlockagePlan is a continuous-time Gilbert–Elliott burst process per
// tag: the link alternates between a clear (good) state and a blocked
// (bad) state with exponentially distributed dwell times, the standard
// two-state Markov model for mmWave blockage dynamics. While blocked,
// the tag's uplink SNR is attenuated by AttenuationDB.
type BlockagePlan struct {
	// AttenuationDB is the extra link loss while blocked (a human body
	// at mmWave costs 20-40 dB).
	AttenuationDB float64
	// MeanClearS is the mean dwell in the clear state (0.02 s default).
	MeanClearS float64
	// MeanBlockedS is the mean dwell in the blocked state (0.005 s
	// default).
	MeanBlockedS float64
}

func (p *BlockagePlan) withDefaults() *BlockagePlan {
	q := *p
	if q.MeanClearS == 0 {
		q.MeanClearS = 0.02
	}
	if q.MeanBlockedS == 0 {
		q.MeanBlockedS = 0.005
	}
	return &q
}

// DeathPlan kills a random subset of the population permanently: each
// tag independently dies with probability Prob at a time drawn from an
// exponential with mean MeanLifetimeS. A dead tag is inaudible forever
// — the network-level model of hardware failure or removal.
type DeathPlan struct {
	// Prob is each tag's probability of dying during the run.
	Prob float64
	// MeanLifetimeS is the mean of the exponential death time (0.05 s
	// default).
	MeanLifetimeS float64
}

func (p *DeathPlan) withDefaults() *DeathPlan {
	q := *p
	if q.MeanLifetimeS == 0 {
		q.MeanLifetimeS = 0.05
	}
	return &q
}

// BrownoutPlan models energy-harvest starvation of battery-free tags:
// the harvester (internal/tag) converts the incident carrier into DC,
// and the sustainable duty cycle at that power determines what fraction
// of each PeriodS the tag is awake. Below the duty threshold the tag
// browns out — inaudible until its storage recovers. Each tag gets a
// random phase so the population does not brown out in lockstep.
type BrownoutPlan struct {
	// IncidentPowerW is the carrier power at the harvester input.
	IncidentPowerW float64
	// PeriodS is the charge/discharge cycle period (0.01 s default).
	PeriodS float64
	// LoadW is the awake-state draw the harvest must sustain (20 µW
	// default — a duty-cycled wake-receiver budget).
	LoadW float64
	// Harvester is the rectifier model; tag.DefaultHarvester when
	// zero-valued (detected via PeakEfficiency == 0).
	Harvester tag.Harvester
}

func (p *BrownoutPlan) withDefaults() *BrownoutPlan {
	q := *p
	if q.PeriodS == 0 {
		q.PeriodS = 0.01
	}
	if q.LoadW == 0 {
		q.LoadW = 20e-6
	}
	if q.Harvester.PeakEfficiency == 0 {
		q.Harvester = tag.DefaultHarvester()
	}
	return &q
}

// DutyCycle returns the awake fraction the plan's harvest sustains.
func (p *BrownoutPlan) DutyCycle() float64 {
	q := p.withDefaults()
	return q.Harvester.DutyCycle(q.IncidentPowerW, q.LoadW,
		tag.DefaultPowerModel().SleepPowerW())
}

// AckLossPlan drops AP→tag feedback: each delivered uplink frame's ACK
// is lost with probability Prob, so the tag retransmits a frame the AP
// already holds and the MAC's duplicate detection must absorb it.
type AckLossPlan struct {
	// Prob is the per-ACK loss probability.
	Prob float64
}

// SNRNoisePlan corrupts the MAC's SNR estimates: every query's answer
// is scaled by a log-normal factor with the given dB standard
// deviation, so link adaptation sometimes picks a rate the true channel
// cannot support (or needlessly backs off).
type SNRNoisePlan struct {
	// SigmaDB is the standard deviation of the multiplicative estimate
	// error, in dB.
	SigmaDB float64
}

// Plan composes the enabled fault processes. A nil sub-plan disables
// that fault; the zero Plan injects nothing.
type Plan struct {
	Blockage *BlockagePlan
	Death    *DeathPlan
	Brownout *BrownoutPlan
	AckLoss  *AckLossPlan
	SNRNoise *SNRNoisePlan
}

// Empty reports whether the plan enables no fault at all.
func (p Plan) Empty() bool {
	return p.Blockage == nil && p.Death == nil && p.Brownout == nil &&
		p.AckLoss == nil && p.SNRNoise == nil
}

// Validate reports parameter errors.
func (p Plan) Validate() error {
	if b := p.Blockage; b != nil {
		if b.AttenuationDB <= 0 {
			return fmt.Errorf("fault: blockage attenuation must be positive, got %g dB", b.AttenuationDB)
		}
		if b.MeanClearS < 0 || b.MeanBlockedS < 0 {
			return fmt.Errorf("fault: blockage dwell means must be non-negative")
		}
	}
	if d := p.Death; d != nil {
		if d.Prob < 0 || d.Prob > 1 {
			return fmt.Errorf("fault: death probability must be in [0,1], got %g", d.Prob)
		}
		if d.MeanLifetimeS < 0 {
			return fmt.Errorf("fault: mean lifetime must be non-negative")
		}
	}
	if b := p.Brownout; b != nil {
		if b.IncidentPowerW <= 0 {
			return fmt.Errorf("fault: brownout incident power must be positive, got %g W", b.IncidentPowerW)
		}
		if b.PeriodS < 0 || b.LoadW < 0 {
			return fmt.Errorf("fault: brownout period and load must be non-negative")
		}
		if err := b.withDefaults().Harvester.Validate(); err != nil {
			return err
		}
	}
	if a := p.AckLoss; a != nil {
		if a.Prob < 0 || a.Prob > 1 {
			return fmt.Errorf("fault: ack-loss probability must be in [0,1], got %g", a.Prob)
		}
	}
	if s := p.SNRNoise; s != nil {
		if s.SigmaDB < 0 {
			return fmt.Errorf("fault: SNR noise sigma must be non-negative, got %g dB", s.SigmaDB)
		}
	}
	return nil
}

// String renders the canonical spec form, parseable by ParseSpec.
func (p Plan) String() string {
	var parts []string
	if b := p.Blockage; b != nil {
		q := b.withDefaults()
		parts = append(parts,
			"blockage="+trim(q.AttenuationDB),
			"clear="+trim(q.MeanClearS),
			"blocked="+trim(q.MeanBlockedS))
	}
	if d := p.Death; d != nil {
		q := d.withDefaults()
		parts = append(parts, "death="+trim(q.Prob), "lifetime="+trim(q.MeanLifetimeS))
	}
	if b := p.Brownout; b != nil {
		q := b.withDefaults()
		parts = append(parts,
			"brownout="+trim(toDBm(q.IncidentPowerW)),
			"period="+trim(q.PeriodS))
	}
	if a := p.AckLoss; a != nil {
		parts = append(parts, "ackloss="+trim(a.Prob))
	}
	if s := p.SNRNoise; s != nil {
		parts = append(parts, "snr="+trim(s.SigmaDB))
	}
	return strings.Join(parts, ",")
}

func trim(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// toDBm converts watts to dBm (inverse of rfmath.FromDBm), rounded to
// a micro-dB so String ∘ ParseSpec is a fixed point despite the
// log/exp float round trip.
func toDBm(w float64) float64 {
	return math.Round((10*math.Log10(w)+30)*1e6) / 1e6
}

// ParseSpec parses a comma-separated key=value fault spec into a Plan:
//
//	blockage=<dB>   Gilbert–Elliott burst blockage of this depth
//	clear=<s>       mean clear dwell (default 0.02)
//	blocked=<s>     mean blocked dwell (default 0.005)
//	death=<prob>    per-tag permanent death probability
//	lifetime=<s>    mean death time (default 0.05)
//	brownout=<dBm>  harvester incident power (starvation below ~-8 dBm)
//	period=<s>      brownout duty period (default 0.01)
//	ackloss=<prob>  AP→tag ACK loss probability
//	snr=<dB>        SNR-estimate corruption sigma
//
// Example: "blockage=30,death=0.25,ackloss=0.2". An empty spec returns
// a nil plan (no faults).
func ParseSpec(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var p Plan
	blockage := func() *BlockagePlan {
		if p.Blockage == nil {
			p.Blockage = &BlockagePlan{}
		}
		return p.Blockage
	}
	death := func() *DeathPlan {
		if p.Death == nil {
			p.Death = &DeathPlan{}
		}
		return p.Death
	}
	brownout := func() *BrownoutPlan {
		if p.Brownout == nil {
			p.Brownout = &BrownoutPlan{}
		}
		return p.Brownout
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, valStr, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: spec entry %q is not key=value", kv)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		v, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
		if err != nil {
			return nil, fmt.Errorf("fault: spec key %q: %v", key, err)
		}
		if seen[key] {
			return nil, fmt.Errorf("fault: spec key %q repeated", key)
		}
		seen[key] = true
		switch key {
		case "blockage":
			blockage().AttenuationDB = v
		case "clear":
			blockage().MeanClearS = v
		case "blocked":
			blockage().MeanBlockedS = v
		case "death":
			death().Prob = v
		case "lifetime":
			death().MeanLifetimeS = v
		case "brownout":
			brownout().IncidentPowerW = rfmath.FromDBm(v)
		case "period":
			brownout().PeriodS = v
		case "ackloss":
			p.AckLoss = &AckLossPlan{Prob: v}
		case "snr":
			p.SNRNoise = &SNRNoisePlan{SigmaDB: v}
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q (want %s)", key, strings.Join(specKeys(), ", "))
		}
	}
	if p.Blockage != nil && p.Blockage.AttenuationDB == 0 {
		return nil, fmt.Errorf("fault: clear=/blocked= need blockage=<dB> to enable the burst process")
	}
	if p.Death != nil && p.Death.Prob == 0 {
		return nil, fmt.Errorf("fault: lifetime= needs death=<prob> to enable tag death")
	}
	if p.Brownout != nil && p.Brownout.IncidentPowerW == 0 {
		return nil, fmt.Errorf("fault: period= needs brownout=<dBm> to enable harvest starvation")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

func specKeys() []string {
	keys := []string{"blockage", "clear", "blocked", "death", "lifetime",
		"brownout", "period", "ackloss", "snr"}
	sort.Strings(keys)
	return keys
}
