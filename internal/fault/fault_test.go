package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mmtag/internal/mac"
	"mmtag/internal/rfmath"
)

// fixedMedium is a trivial mac.Medium: every listed tag is audible at a
// constant linear SNR, independent of beam and rate.
type fixedMedium struct {
	ids []uint8
	snr float64
}

func (m *fixedMedium) Tags() []uint8 { return m.ids }
func (m *fixedMedium) SNR(uint8, float64, mac.Rate) (float64, bool) {
	return m.snr, true
}

func testRate() mac.Rate { return mac.Rate{Mod: mac.ModBPSK(), BitRate: 10e6} }

func newTestInjector(t *testing.T, plan Plan, seed int64, ids ...uint8) *Injector {
	t.Helper()
	if len(ids) == 0 {
		ids = []uint8{1, 2, 3}
	}
	x, err := NewInjector(plan, seed, &fixedMedium{ids: ids, snr: 100})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestFaultStreamsIndependentOfInterleaving is the substrate's central
// determinism guarantee: because every (kind, tag) pair owns a private
// seed-derived stream, the fault state observed for a tag at time t does
// not depend on how many queries *other* tags answered first. Two
// injectors with the same seed and plan, queried time-major versus
// tag-major, must answer identically at every (tag, t) grid point.
func TestFaultStreamsIndependentOfInterleaving(t *testing.T) {
	plan := Plan{
		Blockage: &BlockagePlan{AttenuationDB: 30, MeanClearS: 0.004, MeanBlockedS: 0.002},
		Death:    &DeathPlan{Prob: 0.5, MeanLifetimeS: 0.02},
		SNRNoise: &SNRNoisePlan{SigmaDB: 2},
	}
	ids := []uint8{1, 2, 3, 4}
	times := make([]float64, 200)
	for i := range times {
		times[i] = float64(i) * 2.5e-4
	}
	type key struct {
		id uint8
		ti int
	}
	query := func(x *Injector, clock *float64, id uint8, ti int) (float64, bool) {
		*clock = times[ti]
		return x.SNR(id, 0, testRate())
	}

	gotA := map[key][2]float64{}
	var clockA float64
	a := newTestInjector(t, plan, 99, ids...)
	a.SetClock(func() float64 { return clockA })
	for ti := range times { // time-major: all tags at t0, then t1, ...
		for _, id := range ids {
			snr, ok := query(a, &clockA, id, ti)
			gotA[key{id, ti}] = [2]float64{snr, b2f(ok)}
		}
	}

	var clockB float64
	b := newTestInjector(t, plan, 99, ids...)
	b.SetClock(func() float64 { return clockB })
	for _, id := range ids { // tag-major: tag 1's whole history, then tag 2's...
		for ti := range times {
			snr, ok := query(b, &clockB, id, ti)
			if want := gotA[key{id, ti}]; snr != want[0] || b2f(ok) != want[1] {
				t.Fatalf("tag %d t=%g: tag-major (%g,%v) != time-major (%g,%v)",
					id, times[ti], snr, ok, want[0], want[1] == 1)
			}
		}
	}
	if a.Stats().Deaths != b.Stats().Deaths {
		t.Fatalf("death counts diverge: %d vs %d", a.Stats().Deaths, b.Stats().Deaths)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// TestFaultBlockageOccupancy checks the Gilbert–Elliott chain's
// long-run blocked fraction matches MeanBlocked/(MeanClear+MeanBlocked)
// and that blocked samples show exactly the configured attenuation.
func TestFaultBlockageOccupancy(t *testing.T) {
	plan := Plan{Blockage: &BlockagePlan{AttenuationDB: 20, MeanClearS: 0.01, MeanBlockedS: 0.01}}
	x := newTestInjector(t, plan, 7, 1)
	var now float64
	x.SetClock(func() float64 { return now })
	att := rfmath.FromDB(-20)
	blocked, total := 0, 0
	for now = 0; now < 5; now += 1e-4 {
		snr, ok := x.SNR(1, 0, testRate())
		if !ok {
			t.Fatal("blockage must attenuate, not silence")
		}
		total++
		switch {
		case math.Abs(snr-100*att) < 1e-9:
			blocked++
		case math.Abs(snr-100) < 1e-9:
		default:
			t.Fatalf("SNR %g is neither clear (100) nor blocked (%g)", snr, 100*att)
		}
	}
	frac := float64(blocked) / float64(total)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("blocked fraction %.3f, want ~0.5 for equal dwells", frac)
	}
	if x.Stats().BlockageTransitions == 0 {
		t.Fatal("no transitions counted")
	}
}

// TestFaultDeadByAndPermanence checks death draws: with Prob=1 every
// tag dies, DeadBy respects the horizon and sorts ascending, and a dead
// tag stays silent forever (counted once).
func TestFaultDeadByAndPermanence(t *testing.T) {
	plan := Plan{Death: &DeathPlan{Prob: 1, MeanLifetimeS: 0.01}}
	x := newTestInjector(t, plan, 3, 3, 1, 2)
	if got := x.DeadBy(0); len(got) != 0 {
		t.Fatalf("DeadBy(0) = %v, want none (death times are positive)", got)
	}
	all := x.DeadBy(math.Inf(1))
	if !reflect.DeepEqual(all, []uint8{1, 2, 3}) {
		t.Fatalf("DeadBy(inf) = %v, want [1 2 3]", all)
	}
	var now float64 = 10 // long past every death
	x.SetClock(func() float64 { return now })
	for _, id := range all {
		for i := 0; i < 3; i++ {
			if _, ok := x.SNR(id, 0, testRate()); ok {
				t.Fatalf("dead tag %d still audible", id)
			}
		}
	}
	if got := x.Stats().Deaths; got != 3 {
		t.Fatalf("Deaths = %d, want 3 (each counted once)", got)
	}

	// Prob=0 kills nobody.
	none := newTestInjector(t, Plan{Death: &DeathPlan{Prob: 0}}, 3, 1, 2)
	if got := none.DeadBy(math.Inf(1)); len(got) != 0 {
		t.Fatalf("Prob=0 DeadBy = %v", got)
	}
}

// TestFaultBrownoutDutyCycle checks the harvest model: duty rises
// monotonically with incident power, and the observed starved fraction
// over many periods tracks 1-duty.
func TestFaultBrownoutDutyCycle(t *testing.T) {
	var prev float64 = -1
	for _, dbm := range []float64{-14, -12, -10, -8, -6} {
		p := BrownoutPlan{IncidentPowerW: rfmath.FromDBm(dbm)}
		d := p.DutyCycle()
		if d < prev {
			t.Fatalf("duty not monotone at %g dBm: %g < %g", dbm, d, prev)
		}
		if d < 0 || d > 1 {
			t.Fatalf("duty %g out of [0,1]", d)
		}
		prev = d
	}

	plan := Plan{Brownout: &BrownoutPlan{IncidentPowerW: rfmath.FromDBm(-10), PeriodS: 0.01}}
	x := newTestInjector(t, plan, 11, 1, 2, 3, 4)
	duty := plan.Brownout.DutyCycle()
	var now float64
	x.SetClock(func() float64 { return now })
	starved, total := 0, 0
	for now = 0; now < 2; now += 1e-4 {
		for _, id := range []uint8{1, 2, 3, 4} {
			if _, ok := x.SNR(id, 0, testRate()); !ok {
				starved++
			}
			total++
		}
	}
	frac := float64(starved) / float64(total)
	if want := 1 - duty; math.Abs(frac-want) > 0.05 {
		t.Fatalf("starved fraction %.3f, want ~%.3f (duty %.3f)", frac, want, duty)
	}
}

// TestFaultAckLossProbabilities pins the degenerate ACK-loss rates and
// the drop counter.
func TestFaultAckLossProbabilities(t *testing.T) {
	never := newTestInjector(t, Plan{AckLoss: &AckLossPlan{Prob: 0}}, 5, 1)
	always := newTestInjector(t, Plan{AckLoss: &AckLossPlan{Prob: 1}}, 5, 1)
	for i := 0; i < 50; i++ {
		if never.AckLost(1) {
			t.Fatal("Prob=0 dropped an ACK")
		}
		if !always.AckLost(1) {
			t.Fatal("Prob=1 delivered an ACK")
		}
	}
	if got := always.Stats().AcksDropped; got != 50 {
		t.Fatalf("AcksDropped = %d, want 50", got)
	}
	// Unknown tags (no fault state) pass through.
	if always.AckLost(99) {
		t.Fatal("unknown tag must not lose ACKs")
	}
}

// TestFaultSNRNoiseCorrupts checks estimate corruption perturbs the
// answer without silencing the tag, and counts each corruption.
func TestFaultSNRNoiseCorrupts(t *testing.T) {
	x := newTestInjector(t, Plan{SNRNoise: &SNRNoisePlan{SigmaDB: 3}}, 13, 1)
	changed := 0
	for i := 0; i < 100; i++ {
		snr, ok := x.SNR(1, 0, testRate())
		if !ok {
			t.Fatal("noise must not silence")
		}
		if snr <= 0 {
			t.Fatalf("corrupted SNR %g must stay positive (log-normal)", snr)
		}
		if math.Abs(snr-100) > 1e-9 {
			changed++
		}
	}
	if changed < 90 {
		t.Fatalf("only %d/100 queries corrupted", changed)
	}
	if got := x.Stats().SNRCorrupted; got != 100 {
		t.Fatalf("SNRCorrupted = %d, want 100", got)
	}
}

// TestFaultParseSpecRoundTrip checks String/ParseSpec are inverses on
// the canonical form.
func TestFaultParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"blockage=30,clear=0.02,blocked=0.005",
		"death=0.25,lifetime=0.05",
		"brownout=-10,period=0.01",
		"ackloss=0.2",
		"snr=2",
		"blockage=40,clear=0.01,blocked=0.002,death=0.5,lifetime=0.02,brownout=-8,period=0.03,ackloss=0.3,snr=1.5",
	}
	for _, spec := range specs {
		p, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		round, err := ParseSpec(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if round.String() != p.String() {
			t.Fatalf("%q round-trips to %q", p.String(), round.String())
		}
	}
	// Empty spec means no plan.
	if p, err := ParseSpec("  "); err != nil || p != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", p, err)
	}
}

// TestFaultParseSpecErrors pins the parser's rejection surface.
func TestFaultParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"blockage":                "not key=value",
		"warp=9":                  "unknown spec key",
		"blockage=30,blockage=20": "repeated",
		"blockage=abc":            "invalid syntax",
		"clear=0.01":              "need blockage=",
		"lifetime=0.1":            "needs death=",
		"period=0.01":             "needs brownout=",
		"death=1.5":               "must be in [0,1]",
		"ackloss=-0.1":            "must be in [0,1]",
		"blockage=-3":             "must be positive",
		"snr=-1":                  "must be non-negative",
	}
	for spec, wantSub := range cases {
		_, err := ParseSpec(spec)
		if err == nil {
			t.Errorf("%q: expected error", spec)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%q: error %q missing %q", spec, err, wantSub)
		}
	}
}

// TestFaultInjectorValidation covers constructor errors and pass-through
// for tags added after construction.
func TestFaultInjectorValidation(t *testing.T) {
	if _, err := NewInjector(Plan{}, 1, nil); err == nil {
		t.Fatal("nil medium must error")
	}
	bad := Plan{Brownout: &BrownoutPlan{IncidentPowerW: -1}}
	if _, err := NewInjector(bad, 1, &fixedMedium{ids: []uint8{1}, snr: 10}); err == nil {
		t.Fatal("invalid plan must error")
	}
	// A tag unknown to the injector passes through unfaulted.
	x := newTestInjector(t, Plan{Death: &DeathPlan{Prob: 1, MeanLifetimeS: 1e-6}}, 1, 1)
	var now float64 = 10
	x.SetClock(func() float64 { return now })
	if _, ok := x.SNR(200, 0, testRate()); !ok {
		t.Fatal("unknown tag must pass through")
	}
}
