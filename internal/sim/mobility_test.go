package sim

import (
	"math"
	"testing"

	"mmtag/internal/mac"
	"mmtag/internal/tag"
	"mmtag/internal/vanatta"
)

func mobileNetwork(t *testing.T) *Network {
	t.Helper()
	n := newNetwork(t)
	// A QPSK-capable device so the adaptation ladder reaches 100 Mb/s.
	arr, err := vanatta.New(vanatta.Config{Elements: 8, InsertionLossDB: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := tag.New(tag.Config{
		ID:             1,
		Array:          arr,
		Modulation:     vanatta.QPSK(),
		SwitchRiseTime: 2e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddTag(Placement{Device: tg, DistanceM: 2}); err != nil {
		t.Fatal(err)
	}
	return n
}

func walkAway(endM, duration float64) []Waypoint {
	return []Waypoint{
		{Time: 0, DistanceM: 2},
		{Time: duration, DistanceM: endM},
	}
}

func TestInterpolate(t *testing.T) {
	tr := []Waypoint{
		{Time: 0, DistanceM: 1, AzimuthRad: 0},
		{Time: 1, DistanceM: 3, AzimuthRad: 0.2},
		{Time: 3, DistanceM: 3, AzimuthRad: 0.2, OrientationRad: 1},
	}
	// Before start and after end clamp.
	if w := interpolate(tr, -1); w.DistanceM != 1 {
		t.Fatal("clamp start")
	}
	if w := interpolate(tr, 9); w.OrientationRad != 1 {
		t.Fatal("clamp end")
	}
	// Midpoints interpolate linearly.
	w := interpolate(tr, 0.5)
	if math.Abs(w.DistanceM-2) > 1e-12 || math.Abs(w.AzimuthRad-0.1) > 1e-12 {
		t.Fatalf("midpoint %+v", w)
	}
	w = interpolate(tr, 2)
	if math.Abs(w.OrientationRad-0.5) > 1e-12 {
		t.Fatalf("second segment %+v", w)
	}
}

func TestRunMobileValidation(t *testing.T) {
	n := mobileNetwork(t)
	if _, err := RunMobile(nil, MobileConfig{}); err == nil {
		t.Fatal("nil network must error")
	}
	if _, err := RunMobile(n, MobileConfig{TagID: 9, Trajectory: walkAway(4, 1)}); err == nil {
		t.Fatal("unknown tag must error")
	}
	if _, err := RunMobile(n, MobileConfig{TagID: 1, Trajectory: walkAway(4, 1)[:1]}); err == nil {
		t.Fatal("single waypoint must error")
	}
	bad := []Waypoint{{Time: 1, DistanceM: 2}, {Time: 1, DistanceM: 3}}
	if _, err := RunMobile(n, MobileConfig{TagID: 1, Trajectory: bad}); err == nil {
		t.Fatal("non-increasing times must error")
	}
}

func TestRunMobileWalkAwayAdaptsRate(t *testing.T) {
	n := mobileNetwork(t)
	rep, err := RunMobile(n, MobileConfig{
		TagID:      1,
		Trajectory: walkAway(11, 0.2),
		StepS:      2e-3,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Samples) < 50 {
		t.Fatalf("only %d samples", len(rep.Samples))
	}
	if rep.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// The rate must change at least once as the link thins.
	if rep.RateChanges == 0 {
		t.Fatal("no rate adaptation over a 2->11 m walk")
	}
	// Early samples at high rate, late at a lower one.
	first, last := rep.Samples[0], rep.Samples[len(rep.Samples)-1]
	if first.Rate == last.Rate {
		t.Fatalf("rate unchanged: %s", first.Rate)
	}
	if rep.GoodputBps <= 0 || rep.DeliveryRatio() <= 0 {
		t.Fatal("report totals")
	}
}

func TestRunMobileBlockage(t *testing.T) {
	run := func(retries int) *MobileReport {
		n := mobileNetwork(t)
		rep, err := RunMobile(n, MobileConfig{
			TagID:      1,
			Trajectory: []Waypoint{{Time: 0, DistanceM: 5}, {Time: 0.1, DistanceM: 5}},
			// A deep blockage for the middle of the run: one-way 18 dB
			// = 36 dB round trip, enough to break the top rates but
			// not the robust ones.
			Blockage: []BlockageEvent{{Start: 0.03, End: 0.07, AttenuationDB: 18}},
			StepS:    1e-3,
			Seed:     2,
			Station:  mac.StationConfig{MaxRetries: retries},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run(3)
	// Blocked samples exist and are flagged.
	blocked := 0
	for _, s := range rep.Samples {
		if s.Blocked {
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatal("no blocked samples recorded")
	}
	// The link adapts rather than dying: delivery ratio stays high
	// because adaptation + ARQ ride through the episode.
	if rep.DeliveryRatio() < 0.9 {
		t.Fatalf("delivery ratio %g under blockage", rep.DeliveryRatio())
	}
}

func TestRunMobileARQHelpsOnMarginalLink(t *testing.T) {
	// Pin the rate table to a single aggressive rate so adaptation
	// cannot hide the loss; then ARQ must visibly improve delivery.
	build := func(retries int, d float64) *MobileReport {
		n := mobileNetwork(t)
		rep, err := RunMobile(n, MobileConfig{
			TagID:      1,
			Trajectory: []Waypoint{{Time: 0, DistanceM: d}, {Time: 0.1, DistanceM: d}},
			StepS:      1e-3,
			Seed:       3,
			Station: mac.StationConfig{
				MaxRetries: retries,
				RateTable:  []mac.Rate{{Mod: mac.ModOOK(), BitRate: 100e6}},
				// Keep discovery on a robust probe; only data polls are
				// pinned to the aggressive rate under test.
				ProbeRate: mac.Rate{Mod: mac.ModOOK(), BitRate: 1e6, Coded: true},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// The PER waterfall is steep, so find a genuinely marginal distance
	// empirically rather than hardcoding one.
	marginal := 0.0
	var noARQ *MobileReport
	for d := 6.0; d <= 10.0; d += 0.25 {
		rep := build(-1, d)
		if r := rep.DeliveryRatio(); r > 0.05 && r < 0.95 {
			marginal, noARQ = d, rep
			break
		}
	}
	if noARQ == nil {
		t.Fatal("no marginal distance found in [6, 10] m — PER model shape changed?")
	}
	withARQ := build(3, marginal)
	if withARQ.DeliveryRatio() <= noARQ.DeliveryRatio() {
		t.Fatalf("at %.2f m: ARQ (%g) must beat no-ARQ (%g)",
			marginal, withARQ.DeliveryRatio(), noARQ.DeliveryRatio())
	}
}

func TestRunMobileOutOfRangeStart(t *testing.T) {
	n := newNetwork(t)
	tg := newTag(t, 1, 8)
	n.AddTag(Placement{Device: tg, DistanceM: 500})
	_, err := RunMobile(n, MobileConfig{
		TagID:      1,
		Trajectory: []Waypoint{{Time: 0, DistanceM: 500}, {Time: 1, DistanceM: 400}},
	})
	if err == nil {
		t.Fatal("undiscoverable start must error")
	}
}
