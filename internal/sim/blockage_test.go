package sim

import (
	"math"
	"testing"
)

// TestBlockedAtEdgeCases pins the half-open [Start, End) semantics of
// mobility blockage lookup across malformed event lists: overlapping
// episodes (first listed wins), zero-length episodes (never block),
// out-of-order lists, and inverted intervals.
func TestBlockedAtEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		events   []BlockageEvent
		t        float64
		wantLoss float64
		wantHit  bool
	}{
		{"empty list", nil, 1, 0, false},
		{"inside", []BlockageEvent{{Start: 1, End: 2, AttenuationDB: 30}}, 1.5, 30, true},
		{"start boundary included", []BlockageEvent{{Start: 1, End: 2, AttenuationDB: 30}}, 1, 30, true},
		{"end boundary excluded", []BlockageEvent{{Start: 1, End: 2, AttenuationDB: 30}}, 2, 0, false},
		{"before", []BlockageEvent{{Start: 1, End: 2, AttenuationDB: 30}}, 0.5, 0, false},
		{"zero-length never blocks", []BlockageEvent{{Start: 1, End: 1, AttenuationDB: 30}}, 1, 0, false},
		{"inverted interval never blocks", []BlockageEvent{{Start: 2, End: 1, AttenuationDB: 30}}, 1.5, 0, false},
		{"overlap first listed wins",
			[]BlockageEvent{{Start: 1, End: 3, AttenuationDB: 20}, {Start: 2, End: 4, AttenuationDB: 40}},
			2.5, 20, true},
		{"out-of-order list still matches",
			[]BlockageEvent{{Start: 5, End: 6, AttenuationDB: 10}, {Start: 1, End: 2, AttenuationDB: 25}},
			1.5, 25, true},
		{"gap between episodes",
			[]BlockageEvent{{Start: 1, End: 2, AttenuationDB: 10}, {Start: 3, End: 4, AttenuationDB: 10}},
			2.5, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loss, hit := blockedAt(tc.events, tc.t)
			if hit != tc.wantHit || loss != tc.wantLoss {
				t.Fatalf("blockedAt(%v, %g) = (%g, %v), want (%g, %v)",
					tc.events, tc.t, loss, hit, tc.wantLoss, tc.wantHit)
			}
		})
	}
}

// FuzzBlockedAt cross-checks blockedAt against its specification on
// arbitrary three-event lists: the result must be the first listed
// event containing t under half-open [Start, End) semantics.
func FuzzBlockedAt(f *testing.F) {
	f.Add(0.5, 0.0, 1.0, 20.0, 1.0, 2.0, 30.0, 0.5, 0.7, 40.0)
	f.Add(1.0, 1.0, 1.0, 20.0, 2.0, 1.0, 30.0, -1.0, 5.0, 40.0) // zero-length + inverted
	f.Add(2.0, 3.0, 4.0, 10.0, 1.0, 2.5, 15.0, 2.0, 2.0, 5.0)   // out of order
	f.Fuzz(func(t *testing.T, at, s1, e1, a1, s2, e2, a2, s3, e3, a3 float64) {
		events := []BlockageEvent{
			{Start: s1, End: e1, AttenuationDB: a1},
			{Start: s2, End: e2, AttenuationDB: a2},
			{Start: s3, End: e3, AttenuationDB: a3},
		}
		loss, hit := blockedAt(events, at)
		// Specification: first event with at in [Start, End).
		wantLoss, wantHit := 0.0, false
		for _, e := range events {
			if at >= e.Start && at < e.End {
				wantLoss, wantHit = e.AttenuationDB, true
				break
			}
		}
		if hit != wantHit || !sameFloat(loss, wantLoss) {
			t.Fatalf("blockedAt(%v, %g) = (%g, %v), want (%g, %v)",
				events, at, loss, hit, wantLoss, wantHit)
		}
		if !hit && loss != 0 {
			t.Fatalf("miss must report zero attenuation, got %g", loss)
		}
	})
}

// sameFloat treats NaN as equal to itself so fuzzed attenuations
// compare cleanly.
func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
