package sim

import (
	"strings"
	"testing"

	"mmtag/internal/trace"
)

func TestInventoryEmitsTrace(t *testing.T) {
	n := newNetwork(t)
	for i, az := range []float64{-20, 20} {
		tg := newTag(t, uint8(i+1), 8)
		if err := n.AddTag(Placement{Device: tg, DistanceM: 2, AzimuthRad: Deg(az)}); err != nil {
			t.Fatal(err)
		}
	}
	rec := trace.NewRecorder(0)
	rep, err := RunInventory(n, InventoryConfig{Duration: 0.01, Seed: 1, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	disc := rec.Filter(trace.KindDiscover, 0)
	if len(disc) != rep.Discovered {
		t.Fatalf("discover events %d, report says %d", len(disc), rep.Discovered)
	}
	polls := rec.Filter(trace.KindPoll, 0)
	if len(polls) != rep.FramesOK+rep.FramesLost {
		t.Fatalf("poll events %d, frames %d", len(polls), rep.FramesOK+rep.FramesLost)
	}
	okCount := 0
	for _, e := range polls {
		if e.OK {
			okCount++
		}
	}
	if okCount != rep.FramesOK {
		t.Fatalf("poll OK events %d, FramesOK %d", okCount, rep.FramesOK)
	}
	// Timeline renders with discover lines carrying beam annotations.
	out := rec.Render()
	if !strings.Contains(out, "discover") || !strings.Contains(out, "beam") {
		t.Fatalf("timeline missing annotations:\n%s", out[:min(len(out), 400)])
	}
}

func TestMobileEmitsTrace(t *testing.T) {
	n := mobileNetwork(t)
	rec := trace.NewRecorder(0)
	_, err := RunMobile(n, MobileConfig{
		TagID:      1,
		Trajectory: []Waypoint{{Time: 0, DistanceM: 2}, {Time: 0.1, DistanceM: 10}},
		Blockage:   []BlockageEvent{{Start: 0.03, End: 0.05, AttenuationDB: 20}},
		StepS:      1e-3,
		Seed:       1,
		Trace:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rate changes on the walk-away, and exactly two blockage
	// transitions (start + clear).
	if len(rec.Filter(trace.KindRateChange, 1)) == 0 {
		t.Fatal("no rate-change events on a 2->10 m walk")
	}
	bl := rec.Filter(trace.KindBlockage, 1)
	if len(bl) != 2 {
		t.Fatalf("blockage transitions %d, want 2", len(bl))
	}
	if !strings.Contains(bl[0].Detail, "start") || bl[1].Detail != "clear" {
		t.Fatalf("blockage details %v", bl)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
