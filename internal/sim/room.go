package sim

import (
	"fmt"

	"mmtag/internal/ap"
	"mmtag/internal/channel"
	"mmtag/internal/geom"
	"mmtag/internal/tag"
)

// RoomTag positions a tag device in room coordinates.
type RoomTag struct {
	Device *tag.Tag
	Pos    geom.Point
	// OrientationRad is the tag's incidence angle relative to the
	// straight line back to the AP (0 = facing the AP).
	OrientationRad float64
}

// RoomScenario describes a deployment in 2-D room geometry.
type RoomScenario struct {
	Room geom.Room
	// APPos is the access point's position.
	APPos geom.Point
	// APBoresightRad is the direction the AP array faces (radians from
	// the +X axis).
	APBoresightRad float64
}

// BuildRoomNetwork converts room geometry into a polar Network: each
// tag's distance and azimuth come from its position, obstacle crossings
// become per-tag extra link loss, and the room's first-order wall
// echoes are returned as the clutter field the AP's cancellation stage
// faces.
func BuildRoomNetwork(apx *ap.AP, sc RoomScenario, tags []RoomTag) (*Network, []channel.Clutter, error) {
	if apx == nil {
		return nil, nil, fmt.Errorf("sim: AP is required")
	}
	net, err := NewNetwork(apx, nil)
	if err != nil {
		return nil, nil, err
	}
	for i, rt := range tags {
		if rt.Device == nil {
			return nil, nil, fmt.Errorf("sim: room tag %d has no device", i)
		}
		d, az := geom.Polar(sc.APPos, rt.Pos, sc.APBoresightRad)
		if d <= 0 {
			return nil, nil, fmt.Errorf("sim: room tag %d coincides with the AP", i)
		}
		extra := sc.Room.PathAttenuationDB(sc.APPos, rt.Pos)
		if err := net.AddTag(Placement{
			Device:         rt.Device,
			DistanceM:      d,
			AzimuthRad:     az,
			OrientationRad: rt.OrientationRad,
			ExtraLossDB:    extra,
		}); err != nil {
			return nil, nil, err
		}
	}
	var clutter []channel.Clutter
	for _, e := range sc.Room.MonostaticEchoes(sc.APPos) {
		clutter = append(clutter, channel.Clutter{RCS: e.RCS, DistanceM: e.DistanceM})
	}
	return net, clutter, nil
}
