package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"mmtag/internal/mac"
	"mmtag/internal/obs"
	"mmtag/internal/trace"
)

// Waypoint anchors a mobile tag's placement at a point in time; the
// runner interpolates linearly between consecutive waypoints.
type Waypoint struct {
	Time           float64 // seconds from run start
	DistanceM      float64
	AzimuthRad     float64
	OrientationRad float64
}

// BlockageEvent attenuates the tag's link during [Start, End) seconds.
type BlockageEvent struct {
	Start, End    float64
	AttenuationDB float64
}

// MobileConfig parameterizes a single-tag mobility run.
type MobileConfig struct {
	// TagID selects the (already placed) tag that moves.
	TagID uint8
	// Trajectory is the waypoint list, sorted by time, at least two
	// entries spanning the run.
	Trajectory []Waypoint
	// Blockage lists shadowing episodes.
	Blockage []BlockageEvent
	// StepS is the polling cadence (1 ms if zero).
	StepS float64
	// RefineEvery re-runs beam refinement every k steps (10 if zero) —
	// beam tracking for the moving tag.
	RefineEvery int
	// Station tunes the MAC (beams filled from the codebook).
	Station mac.StationConfig
	// SectorRad is the codebook sector (±60° if zero).
	SectorRad float64
	// Seed drives randomness.
	Seed int64
	// Trace, when non-nil, receives rate-change and blockage events.
	Trace *trace.Recorder
	// Obs, when non-nil, meters the run's MAC and link activity.
	Obs *obs.Handle
}

// MobileSample is one time step of a mobility run.
type MobileSample struct {
	Time      float64
	DistanceM float64
	Blocked   bool
	Rate      string
	Delivered bool
	Attempts  int
}

// MobileReport summarizes a mobility run.
type MobileReport struct {
	Samples     []MobileSample
	Delivered   int
	Lost        int
	BlockedLost int // losses during blockage episodes
	RateChanges int
	GoodputBps  float64
}

// DeliveryRatio returns delivered / (delivered + lost).
func (r *MobileReport) DeliveryRatio() float64 {
	total := r.Delivered + r.Lost
	if total == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(total)
}

// interpolate returns the placement values at time t.
func interpolate(tr []Waypoint, t float64) Waypoint {
	if t <= tr[0].Time {
		return tr[0]
	}
	last := tr[len(tr)-1]
	if t >= last.Time {
		return last
	}
	i := sort.Search(len(tr), func(i int) bool { return tr[i].Time > t }) - 1
	a, b := tr[i], tr[i+1]
	f := (t - a.Time) / (b.Time - a.Time)
	lerp := func(x, y float64) float64 { return x + f*(y-x) }
	return Waypoint{
		Time:           t,
		DistanceM:      lerp(a.DistanceM, b.DistanceM),
		AzimuthRad:     lerp(a.AzimuthRad, b.AzimuthRad),
		OrientationRad: lerp(a.OrientationRad, b.OrientationRad),
	}
}

func blockedAt(events []BlockageEvent, t float64) (float64, bool) {
	for _, e := range events {
		if t >= e.Start && t < e.End {
			return e.AttenuationDB, true
		}
	}
	return 0, false
}

// RunMobile drives one tag along a trajectory, polling at a fixed
// cadence while beam tracking, and reports per-step outcomes. Blockage
// episodes add link loss; the Station's ARQ setting determines whether
// marginal steps are recovered by retransmission.
func RunMobile(n *Network, cfg MobileConfig) (*MobileReport, error) {
	if n == nil {
		return nil, fmt.Errorf("sim: network is required")
	}
	p, ok := n.Placement(cfg.TagID)
	if !ok {
		return nil, fmt.Errorf("sim: unknown tag %d", cfg.TagID)
	}
	if len(cfg.Trajectory) < 2 {
		return nil, fmt.Errorf("sim: trajectory needs at least two waypoints")
	}
	for i := 1; i < len(cfg.Trajectory); i++ {
		if cfg.Trajectory[i].Time <= cfg.Trajectory[i-1].Time {
			return nil, fmt.Errorf("sim: trajectory times must be strictly increasing")
		}
	}
	step := cfg.StepS
	if step == 0 {
		step = 1e-3
	}
	refineEvery := cfg.RefineEvery
	if refineEvery == 0 {
		refineEvery = 10
	}
	sector := cfg.SectorRad
	if sector == 0 {
		sector = Deg(60)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	stCfg := cfg.Station
	stCfg.Beams = n.Codebook(sector)
	if stCfg.Obs == nil {
		stCfg.Obs = cfg.Obs
	}
	if cfg.Obs.Registry() != nil {
		n.Instrument(cfg.Obs)
	}
	station, err := mac.NewStation(stCfg, n, rng)
	if err != nil {
		return nil, err
	}
	spRun := cfg.Obs.StartSpan("mobile-run", cfg.TagID)
	defer spRun.End()

	// Initial placement and discovery.
	start := interpolate(cfg.Trajectory, cfg.Trajectory[0].Time)
	p.DistanceM, p.AzimuthRad, p.OrientationRad = start.DistanceM, start.AzimuthRad, start.OrientationRad
	if station.Discover() == 0 {
		return nil, fmt.Errorf("sim: mobile tag %d not discoverable at the trajectory start", cfg.TagID)
	}

	rep := &MobileReport{}
	end := cfg.Trajectory[len(cfg.Trajectory)-1].Time
	lastRate := ""
	wasBlocked := false
	var bits int64
	for k := 0; ; k++ {
		t := cfg.Trajectory[0].Time + float64(k)*step
		if t > end {
			break
		}
		w := interpolate(cfg.Trajectory, t)
		p.DistanceM, p.AzimuthRad, p.OrientationRad = w.DistanceM, w.AzimuthRad, w.OrientationRad
		loss, blocked := blockedAt(cfg.Blockage, t)
		p.ExtraLossDB = loss

		if k%refineEvery == 0 {
			station.Refine(cfg.TagID)
		}
		res, err := station.Poll(cfg.TagID)
		if err != nil {
			return nil, err
		}
		sample := MobileSample{
			Time:      t,
			DistanceM: w.DistanceM,
			Blocked:   blocked,
			Rate:      res.Rate.String(),
			Delivered: res.Delivered,
			Attempts:  res.Attempts,
		}
		rep.Samples = append(rep.Samples, sample)
		if res.Delivered {
			rep.Delivered++
			bits += int64(res.Bits)
		} else {
			rep.Lost++
			if blocked {
				rep.BlockedLost++
			}
		}
		if lastRate != "" && sample.Rate != lastRate {
			rep.RateChanges++
			if cfg.Trace != nil {
				cfg.Trace.Emit(trace.Event{
					T: t, Kind: trace.KindRateChange, Tag: cfg.TagID,
					Detail: lastRate + " -> " + sample.Rate,
				})
			}
		}
		lastRate = sample.Rate
		if cfg.Trace != nil && blocked != wasBlocked {
			detail := "clear"
			if blocked {
				detail = fmt.Sprintf("start %.0f dB", loss)
			}
			cfg.Trace.Emit(trace.Event{T: t, Kind: trace.KindBlockage, Tag: cfg.TagID, Detail: detail})
		}
		wasBlocked = blocked
	}
	if dur := end - cfg.Trajectory[0].Time; dur > 0 {
		rep.GoodputBps = float64(bits) / dur
	}
	return rep, nil
}
