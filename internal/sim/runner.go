package sim

import (
	"fmt"
	"math"
	"math/rand"

	"mmtag/internal/mac"
	"mmtag/internal/tag"
	"mmtag/internal/trace"
)

// InventoryConfig parameterizes an inventory scenario run.
type InventoryConfig struct {
	// SectorRad is the discovery sector half-angle (60° default).
	SectorRad float64
	// Duration is how long (simulated seconds) to keep polling after
	// discovery (1 s default).
	Duration float64
	// Station tunes the MAC; beams are filled from the codebook.
	Station mac.StationConfig
	// SDM enables space-division multiplexing: tags in beam-separated
	// groups share slots.
	SDM bool
	// SDMChains bounds how many concurrent beams the AP can form
	// (RF-chain count, 4 by default).
	SDMChains int
	// Seed drives all randomness.
	Seed int64
	// Trace, when non-nil, receives structured events (discoveries,
	// polls, rate changes) for offline analysis.
	Trace *trace.Recorder
}

// InventoryReport summarizes an inventory run.
type InventoryReport struct {
	Discovered     int
	TotalTags      int
	DiscoveryTime  float64
	PollCycles     int
	FramesOK       int
	FramesLost     int
	GoodputBps     float64
	SDMGroups      int
	MACStats       mac.Stats
	EnergyPerTagJ  map[uint8]float64
	EnergyPerBitJ  float64
	totalBits      int64
	totalTagEnergy float64
}

// RunInventory executes the full mmTag network scenario: beam-swept
// discovery followed by TDMA polling (optionally SDM-grouped) for the
// configured duration. Tag energy meters advance with their air time.
func RunInventory(n *Network, cfg InventoryConfig) (*InventoryReport, error) {
	if n == nil {
		return nil, fmt.Errorf("sim: network is required")
	}
	if cfg.SectorRad == 0 {
		cfg.SectorRad = Deg(60)
	}
	if cfg.Duration == 0 {
		cfg.Duration = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	stCfg := cfg.Station
	stCfg.Beams = n.Codebook(cfg.SectorRad)
	station, err := mac.NewStation(stCfg, n, rng)
	if err != nil {
		return nil, err
	}

	eng := NewEngine()
	rep := &InventoryReport{
		TotalTags:     n.TagCount(),
		EnergyPerTagJ: make(map[uint8]float64),
	}

	// Wake every tag into listen mode (the AP's carrier is on).
	for _, id := range n.Tags() {
		p, _ := n.Placement(id)
		if err := p.Device.SetState(tag.Listen); err != nil {
			return nil, err
		}
	}

	// Discovery phase: each probe round costs a probe + contention
	// window of slot times at the probe rate.
	rep.Discovered = station.Discover()
	if cfg.Trace != nil {
		for _, rec := range station.Known() {
			cfg.Trace.Emit(trace.Event{
				T:      eng.Now(),
				Kind:   trace.KindDiscover,
				Tag:    rec.ID,
				Detail: fmt.Sprintf("beam %.1fdeg snr %.1fdB", rec.BeamRad*180/math.Pi, 10*log10(rec.SNR)),
			})
		}
	}
	probeBits := 56 + 6*8*2 // header + short probe exchange, approximate
	slotTime := float64(probeBits) / stCfg.ProbeRateOrDefault().BitRate
	discoveryTime := float64(station.Stats.DiscoverySlots+station.Stats.ProbesSent) * slotTime
	eng.RunUntil(discoveryTime)
	rep.DiscoveryTime = discoveryTime

	// Listen-mode energy during discovery.
	for _, id := range n.Tags() {
		p, _ := n.Placement(id)
		p.Device.Advance(discoveryTime, 0)
	}

	// Poll phase.
	known := station.Known()
	groups := [][]uint8{}
	if cfg.SDM {
		chains := cfg.SDMChains
		if chains <= 0 {
			chains = 4
		}
		ids := make([]uint8, len(known))
		for i, k := range known {
			ids[i] = k.ID
		}
		for _, g := range n.SDMGroups(ids, n.BeamSeparation()) {
			// An AP with k RF chains serves at most k beams per slot.
			for len(g) > chains {
				groups = append(groups, g[:chains])
				g = g[chains:]
			}
			groups = append(groups, g)
		}
	} else {
		for _, k := range known {
			groups = append(groups, []uint8{k.ID})
		}
	}
	rep.SDMGroups = len(groups)

	deadline := eng.Now() + cfg.Duration
	for eng.Now() < deadline && len(known) > 0 {
		rep.PollCycles++
		for _, group := range groups {
			// Tags in one group transmit concurrently on separate beams;
			// the slot lasts as long as the slowest member.
			slotDur := 0.0
			for _, id := range group {
				res, err := station.Poll(id)
				if err != nil {
					continue
				}
				if cfg.Trace != nil {
					cfg.Trace.Emit(trace.Event{
						T:      eng.Now(),
						Kind:   trace.KindPoll,
						Tag:    id,
						Detail: res.Rate.String(),
						OK:     res.Delivered,
					})
				}
				if res.Delivered {
					rep.FramesOK++
					rep.totalBits += int64(res.Bits)
				} else {
					rep.FramesLost++
				}
				// Tag energy: the device backscatters for its air time.
				p, _ := n.Placement(id)
				if err := p.Device.SetState(tag.Backscatter); err == nil {
					p.Device.Advance(res.AirTime, res.Rate.SymbolRate())
					p.Device.SetState(tag.Listen)
				}
				rep.EnergyPerTagJ[id] = p.Device.EnergyJ()
				if res.AirTime > slotDur {
					slotDur = res.AirTime
				}
			}
			eng.RunUntil(eng.Now() + slotDur)
			if eng.Now() >= deadline {
				break
			}
		}
	}

	elapsed := eng.Now() - discoveryTime
	if elapsed > 0 {
		rep.GoodputBps = float64(rep.totalBits) / elapsed
	}
	for _, id := range n.Tags() {
		p, _ := n.Placement(id)
		rep.totalTagEnergy += p.Device.EnergyJ()
	}
	if rep.totalBits > 0 {
		// Energy per delivered bit counts only backscatter-phase energy,
		// read back from the per-device meters.
		var backscatterE float64
		for _, id := range n.Tags() {
			p, _ := n.Placement(id)
			listenE := p.Device.Power().ListenPowerW() * p.Device.TimeIn(tag.Listen)
			sleepE := p.Device.Power().SleepPowerW() * p.Device.TimeIn(tag.Sleep)
			if e := p.Device.EnergyJ() - listenE - sleepE; e > 0 {
				backscatterE += e
			}
		}
		rep.EnergyPerBitJ = backscatterE / float64(rep.totalBits)
	}
	rep.MACStats = station.Stats
	return rep, nil
}

// log10 tolerates zero for trace annotations.
func log10(x float64) float64 {
	if x <= 0 {
		return -99
	}
	return math.Log10(x)
}
