package sim

import (
	"fmt"
	"math"
	"math/rand"

	"mmtag/internal/fault"
	"mmtag/internal/mac"
	"mmtag/internal/obs"
	"mmtag/internal/par"
	"mmtag/internal/tag"
	"mmtag/internal/trace"
)

// InventoryConfig parameterizes an inventory scenario run.
type InventoryConfig struct {
	// SectorRad is the discovery sector half-angle (60° default).
	SectorRad float64
	// Duration is how long (simulated seconds) to keep polling after
	// discovery (1 s default).
	Duration float64
	// Station tunes the MAC; beams are filled from the codebook.
	Station mac.StationConfig
	// SDM enables space-division multiplexing: tags in beam-separated
	// groups share slots.
	SDM bool
	// SDMChains bounds how many concurrent beams the AP can form
	// (RF-chain count, 4 by default).
	SDMChains int
	// Seed drives all randomness.
	Seed int64
	// Faults, when non-nil and non-empty, wraps the network in a
	// deterministic fault injector (internal/fault) and enables the
	// MAC's graceful-degradation machinery: health tracking with
	// eviction (DefaultHealthConfig unless Station.Health is set) and
	// periodic rediscovery. Fault randomness derives from Seed.
	Faults *fault.Plan
	// RediscoverEvery is the number of poll cycles between rediscovery
	// sweeps on faulted runs (8 default; only used when Faults is set).
	RediscoverEvery int
	// Trace, when non-nil, receives structured events (discoveries,
	// polls, rate changes) for offline analysis.
	Trace *trace.Recorder
	// Obs, when non-nil, meters the run (counters, SNR histograms,
	// stage spans) into the handle's registry and span tracker; the
	// final registry snapshot lands on InventoryReport.Metrics. A nil
	// handle keeps the run allocation-free.
	Obs *obs.Handle
	// Pool shards multi-replicate sweeps (RunSweep) across workers. A
	// single RunInventory is one serial scenario and ignores it.
	Pool *par.Pool
}

// InventoryReport summarizes an inventory run.
type InventoryReport struct {
	Discovered     int
	TotalTags      int
	DiscoveryTime  float64
	PollCycles     int
	FramesOK       int
	FramesLost     int
	GoodputBps     float64
	SDMGroups      int
	MACStats       mac.Stats
	EnergyPerTagJ  map[uint8]float64
	EnergyPerBitJ  float64
	totalBits      int64
	totalTagEnergy float64
	// Metrics is the run's final metrics snapshot, present when the run
	// was configured with an observability handle.
	Metrics *obs.Snapshot
	// Recovery reports the fault/degradation SLOs; nil on unfaulted
	// runs.
	Recovery *RecoveryReport
	// TagHealth is the station's final belief about every placed tag,
	// present when the health state machine ran (faulted runs, or an
	// explicit Station.Health config). Multi-AP drivers use it to decide
	// health-triggered handoffs.
	TagHealth map[uint8]mac.Health
}

// RecoveryReport summarizes how the MAC degraded and recovered under an
// injected fault plan.
type RecoveryReport struct {
	// TagsDead is how many tags died permanently during the run.
	TagsDead int
	// Evictions and Rediscoveries count roster churn: tags declared
	// lost, and lost tags later recovered by a rediscovery sweep.
	Evictions     int
	Rediscoveries int
	// MeanRecoveryCycles and MaxRecoveryCycles summarize rediscovery
	// latency: poll cycles between a tag's eviction and its recovery.
	MeanRecoveryCycles float64
	MaxRecoveryCycles  int
	// DeliveryRatio is FramesOK / (FramesOK + FramesLost).
	DeliveryRatio float64
	// Degradation counters mirrored from mac.Stats.
	DegradedPicks   int
	AckLosses       int
	DuplicateFrames int
	BudgetSkips     int
	BackoffSkips    int
	// Faults holds the injector's transition counters.
	Faults fault.Stats
}

// runnerMetrics pre-resolves the run-level instruments; nil when off.
type runnerMetrics struct {
	frames       *obs.CounterVec // sim_frames_total{ok}
	cycles       *obs.Counter    // sim_poll_cycles_total
	goodput      *obs.Gauge      // sim_goodput_bps
	discovered   *obs.Gauge      // sim_discovered_tags
	totalTags    *obs.Gauge      // sim_total_tags
	sdmGroups    *obs.Gauge      // sim_sdm_groups
	discTime     *obs.Gauge      // sim_discovery_seconds
	energyPerBit *obs.Gauge      // sim_energy_per_bit_joules
	// tagEnergy and discoverSNR are streaming summaries, not per-tag
	// labeled families: a deployment-scale run observes each tag once
	// into O(1) state instead of materializing one child per tag.
	tagEnergy   *obs.Quantile  // tag_energy_joules (summary)
	discoverSNR *obs.Histogram // mac_discovery_snr_db
}

func newRunnerMetrics(reg *obs.Registry) *runnerMetrics {
	if reg == nil {
		return nil
	}
	return &runnerMetrics{
		frames: reg.CounterVec("sim_frames_total",
			"Uplink frames by delivery outcome.", "ok"),
		cycles: reg.Counter("sim_poll_cycles_total",
			"TDMA/SDM poll cycles completed."),
		goodput: reg.Gauge("sim_goodput_bps",
			"Aggregate goodput of the poll phase."),
		discovered: reg.Gauge("sim_discovered_tags",
			"Tags discovered by the beam sweep."),
		totalTags: reg.Gauge("sim_total_tags",
			"Tags placed in the environment."),
		sdmGroups: reg.Gauge("sim_sdm_groups",
			"Space-division multiplexing groups formed."),
		discTime: reg.Gauge("sim_discovery_seconds",
			"Simulated time the discovery phase took."),
		energyPerBit: reg.Gauge("sim_energy_per_bit_joules",
			"Backscatter energy per delivered bit."),
		tagEnergy: reg.Quantile("tag_energy_joules",
			"Per-tag energy consumed during the run (reservoir-sampled p50/p90/p99)."),
		discoverSNR: reg.Histogram("mac_discovery_snr_db",
			"SNR measured at discovery (dB).",
			obs.LinearBuckets(-10, 5, 14)),
	}
}

// RunInventory executes the full mmTag network scenario: beam-swept
// discovery followed by TDMA polling (optionally SDM-grouped) for the
// configured duration. Tag energy meters advance with their air time.
func RunInventory(n *Network, cfg InventoryConfig) (*InventoryReport, error) {
	if n == nil {
		return nil, fmt.Errorf("sim: network is required")
	}
	if cfg.SectorRad == 0 {
		cfg.SectorRad = Deg(60)
	}
	if cfg.Duration == 0 {
		cfg.Duration = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	stCfg := cfg.Station
	stCfg.Beams = n.Codebook(cfg.SectorRad)
	if stCfg.Obs == nil {
		stCfg.Obs = cfg.Obs
	}

	eng := NewEngine()

	// Fault plan: wrap the network so the MAC sees the faulted radio,
	// and arm the degradation machinery (health tracking + rediscovery).
	var medium mac.Medium = n
	var inj *fault.Injector
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		var err error
		inj, err = fault.NewInjector(*cfg.Faults, cfg.Seed, n)
		if err != nil {
			return nil, err
		}
		inj.SetClock(eng.Now)
		if tr := cfg.Trace; tr != nil {
			inj.OnEvent(func(e fault.Event) {
				tr.Emit(trace.Event{
					T:      e.T,
					Kind:   trace.KindFault,
					Tag:    e.Tag,
					Detail: e.Kind + " " + e.Detail,
				})
			})
		}
		inj.Instrument(cfg.Obs.Registry())
		medium = inj
		if !stCfg.Health.Enabled() {
			stCfg.Health = mac.DefaultHealthConfig()
		}
		if cfg.RediscoverEvery == 0 {
			cfg.RediscoverEvery = 8
		}
	}

	station, err := mac.NewStation(stCfg, medium, rng)
	if err != nil {
		return nil, err
	}

	m := newRunnerMetrics(cfg.Obs.Registry())
	if m != nil {
		eng.Instrument(cfg.Obs.Registry())
		n.Instrument(cfg.Obs)
		cfg.Obs.Spans().SetClock(eng.Now)
	}
	spRun := cfg.Obs.StartSpan("inventory-run", 0)
	rep := &InventoryReport{
		TotalTags:     n.TagCount(),
		EnergyPerTagJ: make(map[uint8]float64),
	}

	// Wake every tag into listen mode (the AP's carrier is on).
	for _, id := range n.Tags() {
		p, _ := n.Placement(id)
		if err := p.Device.SetState(tag.Listen); err != nil {
			return nil, err
		}
	}

	// Discovery phase: each probe round costs a probe + contention
	// window of slot times at the probe rate.
	spDiscovery := cfg.Obs.StartSpan("discovery", 0)
	rep.Discovered = station.Discover()
	for _, rec := range station.Known() {
		if cfg.Trace != nil {
			cfg.Trace.Emit(trace.Event{
				T:      eng.Now(),
				Kind:   trace.KindDiscover,
				Tag:    rec.ID,
				Detail: fmt.Sprintf("beam %.1fdeg snr %.1fdB", rec.BeamRad*180/math.Pi, 10*log10(rec.SNR)),
			})
		}
		if m != nil {
			m.discoverSNR.Observe(10 * log10(rec.SNR))
		}
	}
	probeBits := 56 + 6*8*2 // header + short probe exchange, approximate
	slotTime := float64(probeBits) / stCfg.ProbeRateOrDefault().BitRate
	discoveryTime := float64(station.Stats.DiscoverySlots+station.Stats.ProbesSent) * slotTime
	eng.RunUntil(discoveryTime)
	rep.DiscoveryTime = discoveryTime
	spDiscovery.End()
	if m != nil {
		m.discovered.Set(float64(rep.Discovered))
		m.totalTags.Set(float64(rep.TotalTags))
		m.discTime.Set(discoveryTime)
	}

	// Listen-mode energy during discovery.
	for _, id := range n.Tags() {
		p, _ := n.Placement(id)
		p.Device.Advance(discoveryTime, 0)
	}

	// Poll phase.
	computeGroups := func() [][]uint8 {
		known := station.Known()
		groups := [][]uint8{}
		if cfg.SDM {
			chains := cfg.SDMChains
			if chains <= 0 {
				chains = 4
			}
			ids := make([]uint8, len(known))
			for i, k := range known {
				ids[i] = k.ID
			}
			for _, g := range n.SDMGroups(ids, n.BeamSeparation()) {
				// An AP with k RF chains serves at most k beams per slot.
				for len(g) > chains {
					groups = append(groups, g[:chains])
					g = g[chains:]
				}
				groups = append(groups, g)
			}
		} else {
			for _, k := range known {
				groups = append(groups, []uint8{k.ID})
			}
		}
		return groups
	}
	groups := computeGroups()
	rep.SDMGroups = len(groups)
	rosterV := station.RosterVersion()

	deadline := eng.Now() + cfg.Duration
	spPoll := cfg.Obs.StartSpan("poll-phase", 0)
	var lastRate map[uint8]string // only written under the Trace gate
	if cfg.Trace != nil {
		lastRate = make(map[uint8]string)
	}
	// On faulted runs the roster shrinks (eviction) and regrows
	// (rediscovery), so the loop keeps running through an empty roster
	// until the deadline; the idle guard below guarantees time progress.
	for eng.Now() < deadline && (len(groups) > 0 || inj != nil) {
		rep.PollCycles++
		if m != nil {
			m.cycles.Inc()
		}
		station.BeginCycle()
		cycleStart := eng.Now()
		for _, group := range groups {
			// Tags in one group transmit concurrently on separate beams;
			// the slot lasts as long as the slowest member.
			slotDur := 0.0
			for _, id := range group {
				if !station.ShouldPoll(id) {
					continue
				}
				res, err := station.Poll(id)
				if err != nil {
					continue
				}
				if cfg.Trace != nil {
					cfg.Trace.Emit(trace.Event{
						T:      eng.Now(),
						Kind:   trace.KindPoll,
						Tag:    id,
						Detail: res.Rate.String(),
						OK:     res.Delivered,
					})
					// Rate-change events make adaptation visible to the
					// trace analyzer without diffing every poll line.
					rate := res.Rate.String()
					if prev, ok := lastRate[id]; ok && prev != rate {
						cfg.Trace.Emit(trace.Event{
							T:      eng.Now(),
							Kind:   trace.KindRateChange,
							Tag:    id,
							Detail: prev + " -> " + rate,
						})
					}
					lastRate[id] = rate
				}
				if res.Delivered {
					rep.FramesOK++
					rep.totalBits += int64(res.Bits)
				} else {
					rep.FramesLost++
				}
				if m != nil {
					m.frames.With(obs.OK(res.Delivered)).Inc()
				}
				// Tag energy: the device backscatters for its air time.
				p, _ := n.Placement(id)
				if err := p.Device.SetState(tag.Backscatter); err == nil {
					p.Device.Advance(res.AirTime, res.Rate.SymbolRate())
					p.Device.SetState(tag.Listen)
				}
				rep.EnergyPerTagJ[id] = p.Device.EnergyJ()
				if res.AirTime > slotDur {
					slotDur = res.AirTime
				}
			}
			eng.RunUntil(eng.Now() + slotDur)
			if eng.Now() >= deadline {
				break
			}
		}
		if inj != nil {
			// Health transitions become trace events.
			for _, ht := range station.TakeHealthEvents() {
				if cfg.Trace != nil {
					cfg.Trace.Emit(trace.Event{
						T:      eng.Now(),
						Kind:   trace.KindHealth,
						Tag:    ht.Tag,
						Detail: ht.From.String() + " -> " + ht.To.String(),
					})
				}
			}
			// Periodic rediscovery sweeps recover evicted tags; their
			// probe/contention air time is charged to the run. A sweep
			// costs a full beam scan, so it only runs while tags are
			// actually missing.
			if cfg.RediscoverEvery > 0 && rep.PollCycles%cfg.RediscoverEvery == 0 &&
				station.LostCount() > 0 && eng.Now() < deadline {
				preSlots := station.Stats.DiscoverySlots + station.Stats.ProbesSent
				station.Discover()
				extra := float64(station.Stats.DiscoverySlots+station.Stats.ProbesSent-preSlots) * slotTime
				eng.RunUntil(eng.Now() + extra)
			}
			if v := station.RosterVersion(); v != rosterV {
				rosterV = v
				groups = computeGroups()
				if len(groups) > rep.SDMGroups {
					rep.SDMGroups = len(groups)
				}
			}
			// Idle cycle (roster empty or everyone backing off): advance
			// one probe slot so the loop always makes time progress.
			if eng.Now() == cycleStart {
				eng.RunUntil(cycleStart + slotTime)
			}
		}
	}
	spPoll.End()

	elapsed := eng.Now() - discoveryTime
	if elapsed > 0 {
		rep.GoodputBps = float64(rep.totalBits) / elapsed
	}
	for _, id := range n.Tags() {
		p, _ := n.Placement(id)
		rep.totalTagEnergy += p.Device.EnergyJ()
	}
	if rep.totalBits > 0 {
		// Energy per delivered bit counts only backscatter-phase energy,
		// read back from the per-device meters.
		var backscatterE float64
		for _, id := range n.Tags() {
			p, _ := n.Placement(id)
			listenE := p.Device.Power().ListenPowerW() * p.Device.TimeIn(tag.Listen)
			sleepE := p.Device.Power().SleepPowerW() * p.Device.TimeIn(tag.Sleep)
			if e := p.Device.EnergyJ() - listenE - sleepE; e > 0 {
				backscatterE += e
			}
		}
		rep.EnergyPerBitJ = backscatterE / float64(rep.totalBits)
	}
	rep.MACStats = station.Stats
	if stCfg.Health.Enabled() {
		rep.TagHealth = make(map[uint8]mac.Health, n.TagCount())
		for _, id := range n.Tags() {
			rep.TagHealth[id] = station.Health(id)
		}
	}
	if inj != nil {
		st := station.Stats
		rr := &RecoveryReport{
			TagsDead:        len(inj.DeadBy(eng.Now())),
			Evictions:       st.Evictions,
			Rediscoveries:   st.Rediscoveries,
			DegradedPicks:   st.DegradedPicks,
			AckLosses:       st.AckLosses,
			DuplicateFrames: st.DuplicateFrames,
			BudgetSkips:     st.BudgetSkips,
			BackoffSkips:    st.BackoffSkips,
			Faults:          inj.Stats(),
		}
		if total := rep.FramesOK + rep.FramesLost; total > 0 {
			rr.DeliveryRatio = float64(rep.FramesOK) / float64(total)
		}
		if rounds := station.RecoveryRounds(); len(rounds) > 0 {
			sum := 0
			for _, r := range rounds {
				sum += r
				if r > rr.MaxRecoveryCycles {
					rr.MaxRecoveryCycles = r
				}
			}
			rr.MeanRecoveryCycles = float64(sum) / float64(len(rounds))
		}
		rep.Recovery = rr
	}
	spRun.End()
	if m != nil {
		m.goodput.Set(rep.GoodputBps)
		m.sdmGroups.Set(float64(rep.SDMGroups))
		m.energyPerBit.Set(rep.EnergyPerBitJ)
		// Ascending-ID iteration keeps the summary's reservoir and sum
		// independent of map iteration order.
		for id := 0; id < 256; id++ {
			if e, ok := rep.EnergyPerTagJ[uint8(id)]; ok {
				m.tagEnergy.Observe(e)
			}
		}
		rep.Metrics = cfg.Obs.Registry().Snapshot()
	}
	return rep, nil
}

// log10 tolerates zero for trace annotations.
func log10(x float64) float64 {
	if x <= 0 {
		return -99
	}
	return math.Log10(x)
}
