package sim

import (
	"reflect"
	"testing"

	"mmtag/internal/fault"
	"mmtag/internal/par"
	"mmtag/internal/rfmath"
)

func chaosPlan() *fault.Plan {
	return &fault.Plan{
		Blockage: &fault.BlockagePlan{AttenuationDB: 30},
		Death:    &fault.DeathPlan{Prob: 0.3, MeanLifetimeS: 0.02},
		AckLoss:  &fault.AckLossPlan{Prob: 0.2},
		SNRNoise: &fault.SNRNoisePlan{SigmaDB: 1},
	}
}

// TestFaultedInventoryDeterminism: two faulted runs with the same seed
// and plan produce identical reports — the fault substrate adds no
// wall-clock or map-order dependence.
func TestFaultedInventoryDeterminism(t *testing.T) {
	runOnce := func() *InventoryReport {
		net, err := sweepFactory(t, 5)()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunInventory(net, InventoryConfig{
			Duration: 0.03, Seed: 42, Faults: chaosPlan(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulted runs diverge:\n%+v\n%+v", a, b)
	}
	if a.Recovery == nil {
		t.Fatal("faulted run must carry a RecoveryReport")
	}
}

// TestFaultedSweepParallelMatchesSerial pins the ISSUE's acceptance
// criterion: a faulted sweep is byte-identical at -parallel 1 and 8.
func TestFaultedSweepParallelMatchesSerial(t *testing.T) {
	runAt := func(workers int) *SweepReport {
		pool := par.New(par.Config{Workers: workers})
		defer pool.Close()
		rep, err := RunSweep(SweepConfig{
			Base: InventoryConfig{
				Duration: 0.03, Seed: 42, Faults: chaosPlan(), Pool: pool,
			},
			Replicates: 4,
			NewNetwork: sweepFactory(t, 5),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := runAt(1)
	parallel := runAt(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("faulted sweep diverges between 1 and 8 workers:\n%+v\n%+v", serial, parallel)
	}
	var sawRecovery bool
	for _, r := range serial.Replicates {
		if r.Report.Recovery != nil {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Fatal("no replicate carried a RecoveryReport")
	}
}

// TestFaultedRunBoundedRecovery asserts the degradation SLOs on a
// brownout scenario: tags get evicted while starved, rediscovered once
// awake, and recovery latency stays bounded.
func TestFaultedRunBoundedRecovery(t *testing.T) {
	net, err := sweepFactory(t, 6)()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunInventory(net, InventoryConfig{
		Duration: 0.15,
		Seed:     42,
		Faults: &fault.Plan{Brownout: &fault.BrownoutPlan{
			IncidentPowerW: rfmath.FromDBm(-9), PeriodS: 0.03,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := rep.Recovery
	if rec == nil {
		t.Fatal("missing RecoveryReport")
	}
	if rec.Evictions == 0 {
		t.Fatal("deep brownout must evict starved tags")
	}
	if rec.Rediscoveries == 0 {
		t.Fatal("awake tags must be rediscovered")
	}
	// Zero is legal (a tag evicted and re-swept within the same cycle);
	// the SLO is that recovery latency stays bounded.
	if rec.MaxRecoveryCycles < 0 || rec.MaxRecoveryCycles > 256 {
		t.Fatalf("MaxRecoveryCycles = %d, want bounded in [0,256]", rec.MaxRecoveryCycles)
	}
	if rec.MeanRecoveryCycles < 0 || rec.MeanRecoveryCycles > float64(rec.MaxRecoveryCycles) {
		t.Fatalf("MeanRecoveryCycles = %g inconsistent with max %d",
			rec.MeanRecoveryCycles, rec.MaxRecoveryCycles)
	}
	if rec.DeliveryRatio < 0 || rec.DeliveryRatio > 1 {
		t.Fatalf("DeliveryRatio = %g out of [0,1]", rec.DeliveryRatio)
	}
	if rec.Faults.BrownoutTransitions == 0 {
		t.Fatal("brownout run observed no awake/starved edges")
	}
}

// TestFaultPlanAbsentLeavesRunUntouched: a nil plan and an empty plan
// both take the unfaulted path (no RecoveryReport, identical reports),
// so pre-fault behavior is preserved bit for bit.
func TestFaultPlanAbsentLeavesRunUntouched(t *testing.T) {
	runWith := func(p *fault.Plan) *InventoryReport {
		net, err := sweepFactory(t, 4)()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunInventory(net, InventoryConfig{Duration: 0.02, Seed: 7, Faults: p})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	nilPlan := runWith(nil)
	emptyPlan := runWith(&fault.Plan{})
	if nilPlan.Recovery != nil || emptyPlan.Recovery != nil {
		t.Fatal("unfaulted runs must not carry a RecoveryReport")
	}
	if !reflect.DeepEqual(nilPlan, emptyPlan) {
		t.Fatal("empty plan diverges from nil plan")
	}
}
