package sim

import (
	"math"
	"testing"

	"mmtag/internal/ap"
	"mmtag/internal/geom"
	"mmtag/internal/mac"
	"mmtag/internal/rfmath"
)

func roomScenario(t *testing.T) (RoomScenario, *ap.AP) {
	t.Helper()
	room, err := geom.Rectangle(10, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	apx, err := ap.New(ap.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return RoomScenario{
		Room:  room,
		APPos: geom.Point{X: 0.5, Y: 3},
		// The AP faces down the +X axis into the room.
		APBoresightRad: 0,
	}, apx
}

func TestBuildRoomNetworkGeometry(t *testing.T) {
	sc, apx := roomScenario(t)
	tags := []RoomTag{
		// Straight ahead, 4 m.
		{Device: newTag(t, 1, 8), Pos: geom.Point{X: 4.5, Y: 3}},
		// 3 m ahead, 3 m up: 45 degrees left at ~4.24 m.
		{Device: newTag(t, 2, 8), Pos: geom.Point{X: 3.5, Y: 6}},
	}
	net, clutter, err := BuildRoomNetwork(apx, sc, tags)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := net.Placement(1)
	if math.Abs(p1.DistanceM-4) > 1e-12 || math.Abs(p1.AzimuthRad) > 1e-12 {
		t.Fatalf("tag 1 placement %+v", p1)
	}
	p2, _ := net.Placement(2)
	if math.Abs(p2.DistanceM-math.Hypot(3, 3)) > 1e-12 ||
		math.Abs(p2.AzimuthRad-math.Pi/4) > 1e-12 {
		t.Fatalf("tag 2 placement %+v", p2)
	}
	// Rectangle walls produce four first-order echoes.
	if len(clutter) != 4 {
		t.Fatalf("clutter count %d, want 4", len(clutter))
	}
}

func TestRoomObstacleAttenuatesLink(t *testing.T) {
	sc, apx := roomScenario(t)
	// A 12 dB shelf between the AP and the far tag.
	if err := sc.Room.AddObstacle(geom.Point{X: 2, Y: 1}, geom.Point{X: 2, Y: 5}, 12); err != nil {
		t.Fatal(err)
	}
	tags := []RoomTag{
		{Device: newTag(t, 1, 8), Pos: geom.Point{X: 4.5, Y: 3}},     // behind the shelf
		{Device: newTag(t, 2, 8), Pos: geom.Point{X: 0.5, Y: 3 - 2}}, // beside the AP, clear
	}
	net, _, err := BuildRoomNetwork(apx, sc, tags)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := net.Placement(1)
	if p1.ExtraLossDB != 12 {
		t.Fatalf("shadowed tag extra loss %g, want 12", p1.ExtraLossDB)
	}
	p2, _ := net.Placement(2)
	if p2.ExtraLossDB != 0 {
		t.Fatalf("clear tag extra loss %g, want 0", p2.ExtraLossDB)
	}
	// The loss flows through to SNR: compare to the same geometry
	// without the obstacle (one-way ExtraLossDB enters MiscLossDB).
	scClean, apx2 := roomScenario(t)
	netClean, _, err := BuildRoomNetwork(apx2, scClean, []RoomTag{
		{Device: newTag(t, 1, 8), Pos: geom.Point{X: 4.5, Y: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := mac.Rate{Mod: mac.ModOOK(), BitRate: 10e6}
	shadowed, _ := net.SNR(1, 0, r)
	clean, _ := netClean.SNR(1, 0, r)
	if math.Abs(rfmath.DB(clean/shadowed)-12) > 0.01 {
		t.Fatalf("SNR penalty %g dB, want 12", rfmath.DB(clean/shadowed))
	}
}

func TestRoomNetworkEndToEnd(t *testing.T) {
	sc, apx := roomScenario(t)
	tags := []RoomTag{
		{Device: newTag(t, 1, 8), Pos: geom.Point{X: 4, Y: 3}},
		{Device: newTag(t, 2, 8), Pos: geom.Point{X: 3, Y: 5}},
		{Device: newTag(t, 3, 8), Pos: geom.Point{X: 3, Y: 1}},
	}
	net, _, err := BuildRoomNetwork(apx, sc, tags)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunInventory(net, InventoryConfig{Duration: 0.02, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Discovered != 3 {
		t.Fatalf("discovered %d of 3 room tags", rep.Discovered)
	}
	if rep.GoodputBps <= 0 {
		t.Fatal("no goodput in the room scenario")
	}
}

func TestBuildRoomNetworkValidation(t *testing.T) {
	sc, apx := roomScenario(t)
	if _, _, err := BuildRoomNetwork(nil, sc, nil); err == nil {
		t.Fatal("nil AP must error")
	}
	if _, _, err := BuildRoomNetwork(apx, sc, []RoomTag{{}}); err == nil {
		t.Fatal("missing device must error")
	}
	if _, _, err := BuildRoomNetwork(apx, sc, []RoomTag{
		{Device: newTag(t, 1, 8), Pos: sc.APPos},
	}); err == nil {
		t.Fatal("tag on top of the AP must error")
	}
}
