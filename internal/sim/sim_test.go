package sim

import (
	"math"
	"testing"

	"mmtag/internal/ap"
	"mmtag/internal/mac"
	"mmtag/internal/rfmath"
	"mmtag/internal/tag"
	"mmtag/internal/vanatta"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	// Ties fire in scheduling order.
	e.Schedule(1, func() { order = append(order, 10) })
	for e.Step() {
	}
	want := []int{1, 10, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("clock %g, want 3", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() {
		fired++
		e.Schedule(1, func() { fired++ })
	})
	e.RunUntil(1.5)
	if fired != 1 {
		t.Fatalf("fired %d by t=1.5, want 1", fired)
	}
	e.RunUntil(3)
	if fired != 2 || e.Now() != 3 {
		t.Fatalf("fired %d at t=%g", fired, e.Now())
	}
	if e.Pending() != 0 {
		t.Fatal("queue must be empty")
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func newTag(t *testing.T, id uint8, elements int) *tag.Tag {
	t.Helper()
	arr, err := vanatta.New(vanatta.Config{Elements: elements, InsertionLossDB: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := tag.New(tag.Config{
		ID:             id,
		Array:          arr,
		Modulation:     vanatta.OOK(),
		SwitchRiseTime: 2e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func newNetwork(t *testing.T) *Network {
	t.Helper()
	a, err := ap.New(ap.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, nil); err == nil {
		t.Fatal("nil AP must error")
	}
	n := newNetwork(t)
	if err := n.AddTag(Placement{}); err == nil {
		t.Fatal("missing device must error")
	}
	tg := newTag(t, 1, 8)
	if err := n.AddTag(Placement{Device: tg, DistanceM: 0}); err == nil {
		t.Fatal("zero distance must error")
	}
	if err := n.AddTag(Placement{Device: tg, DistanceM: 2}); err != nil {
		t.Fatal(err)
	}
	dup := newTag(t, 1, 8)
	if err := n.AddTag(Placement{Device: dup, DistanceM: 3}); err == nil {
		t.Fatal("duplicate ID must error")
	}
	if n.TagCount() != 1 {
		t.Fatal("count")
	}
}

func TestNetworkSNRPhysics(t *testing.T) {
	n := newNetwork(t)
	for i, d := range []float64{1, 2, 4, 8} {
		tg := newTag(t, uint8(i+1), 8)
		if err := n.AddTag(Placement{Device: tg, DistanceM: d}); err != nil {
			t.Fatal(err)
		}
	}
	rate := mac.Rate{Mod: mac.ModOOK(), BitRate: 10e6}
	var prev float64 = math.Inf(1)
	for _, id := range n.Tags() {
		snr, audible := n.SNR(id, 0, rate)
		if !audible {
			t.Fatalf("tag %d inaudible", id)
		}
		if snr >= prev {
			t.Fatal("SNR must fall with distance")
		}
		prev = snr
	}
	// Doubling distance costs 12 dB (backscatter).
	s1, _ := n.SNR(1, 0, rate)
	s2, _ := n.SNR(2, 0, rate)
	if math.Abs(rfmath.DB(s1/s2)-12.04) > 0.05 {
		t.Fatalf("distance doubling cost %g dB, want ~12", rfmath.DB(s1/s2))
	}
}

func TestNetworkBeamMatters(t *testing.T) {
	n := newNetwork(t)
	tg := newTag(t, 1, 8)
	n.AddTag(Placement{Device: tg, DistanceM: 2, AzimuthRad: Deg(20)})
	rate := mac.Rate{Mod: mac.ModOOK(), BitRate: 10e6}
	on, okOn := n.SNR(1, Deg(20), rate)
	off, okOff := n.SNR(1, Deg(-20), rate)
	if !okOn {
		t.Fatal("on-beam must be audible")
	}
	if okOff && off >= on {
		t.Fatal("off-beam SNR must be worse (or inaudible)")
	}
}

func TestNetworkOrientationMatters(t *testing.T) {
	n := newNetwork(t)
	facing := newTag(t, 1, 8)
	oblique := newTag(t, 2, 8)
	n.AddTag(Placement{Device: facing, DistanceM: 2})
	n.AddTag(Placement{Device: oblique, DistanceM: 2, OrientationRad: Deg(40)})
	rate := mac.Rate{Mod: mac.ModOOK(), BitRate: 10e6}
	s1, _ := n.SNR(1, 0, rate)
	s2, _ := n.SNR(2, 0, rate)
	if s2 >= s1 {
		t.Fatal("oblique tag must have lower SNR")
	}
	// But thanks to retro-reflection the penalty is only the element
	// pattern: within ~10 dB.
	if rfmath.DB(s1/s2) > 10 {
		t.Fatalf("orientation penalty %g dB too steep for a van atta tag", rfmath.DB(s1/s2))
	}
}

func TestNetworkUnknownTag(t *testing.T) {
	n := newNetwork(t)
	if _, audible := n.SNR(9, 0, mac.Rate{Mod: mac.ModOOK(), BitRate: 1e6}); audible {
		t.Fatal("unknown tag must be inaudible")
	}
	if _, err := n.UplinkSNRdB(9, 1e6, 1); err == nil {
		t.Fatal("unknown tag SNR query must error")
	}
}

func TestSDMGroups(t *testing.T) {
	n := newNetwork(t)
	angles := []float64{-40, -38, 0, 2, 40}
	for i, a := range angles {
		tg := newTag(t, uint8(i+1), 8)
		n.AddTag(Placement{Device: tg, DistanceM: 2, AzimuthRad: Deg(a)})
	}
	groups := n.SDMGroups(n.Tags(), Deg(10))
	// -40, 0, 40 can share; -38 and 2 need other groups.
	if len(groups) != 2 {
		t.Fatalf("groups %v, want 2", groups)
	}
	// Every pair within a group is separated by >= 10 degrees.
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				pi, _ := n.Placement(g[i])
				pj, _ := n.Placement(g[j])
				if math.Abs(pi.AzimuthRad-pj.AzimuthRad) < Deg(10) {
					t.Fatalf("group %v violates separation", g)
				}
			}
		}
	}
}

func TestRunInventoryEndToEnd(t *testing.T) {
	n := newNetwork(t)
	placements := []struct {
		d, az float64
	}{{2, -30}, {3, 0}, {4, 30}, {6, 15}}
	for i, p := range placements {
		tg := newTag(t, uint8(i+1), 8)
		if err := n.AddTag(Placement{Device: tg, DistanceM: p.d, AzimuthRad: Deg(p.az)}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := RunInventory(n, InventoryConfig{Duration: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Discovered != 4 {
		t.Fatalf("discovered %d of 4", rep.Discovered)
	}
	if rep.FramesOK == 0 || rep.GoodputBps <= 0 {
		t.Fatalf("no traffic delivered: %+v", rep)
	}
	if rep.PollCycles == 0 {
		t.Fatal("no poll cycles ran")
	}
	// Tag energy meters moved, and energy/bit lands in the nJ decade.
	if len(rep.EnergyPerTagJ) == 0 {
		t.Fatal("no tag energy recorded")
	}
	if rep.EnergyPerBitJ < 0.1e-9 || rep.EnergyPerBitJ > 100e-9 {
		t.Fatalf("energy per bit %.3g J implausible", rep.EnergyPerBitJ)
	}
}

func TestRunInventorySDMImprovesGoodput(t *testing.T) {
	build := func() *Network {
		n := newNetwork(t)
		for i, az := range []float64{-45, -15, 15, 45} {
			tg := newTag(t, uint8(i+1), 8)
			n.AddTag(Placement{Device: tg, DistanceM: 2, AzimuthRad: Deg(az)})
		}
		return n
	}
	plain, err := RunInventory(build(), InventoryConfig{Duration: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sdm, err := RunInventory(build(), InventoryConfig{Duration: 0.05, Seed: 2, SDM: true})
	if err != nil {
		t.Fatal(err)
	}
	if sdm.SDMGroups >= plain.SDMGroups {
		t.Fatalf("SDM groups %d should be fewer than TDMA slots %d", sdm.SDMGroups, plain.SDMGroups)
	}
	if sdm.GoodputBps <= plain.GoodputBps {
		t.Fatalf("SDM goodput %g must beat TDMA %g", sdm.GoodputBps, plain.GoodputBps)
	}
}

func TestRunInventoryOutOfRangeTag(t *testing.T) {
	n := newNetwork(t)
	near := newTag(t, 1, 8)
	far := newTag(t, 2, 8)
	n.AddTag(Placement{Device: near, DistanceM: 2})
	// 200 m: incident power below the envelope detector floor.
	n.AddTag(Placement{Device: far, DistanceM: 200})
	rep, err := RunInventory(n, InventoryConfig{Duration: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Discovered != 1 {
		t.Fatalf("discovered %d, want only the near tag", rep.Discovered)
	}
}

func TestRunInventoryValidation(t *testing.T) {
	if _, err := RunInventory(nil, InventoryConfig{}); err == nil {
		t.Fatal("nil network must error")
	}
}
