package sim

import (
	"context"
	"fmt"
	"math"

	"mmtag/internal/par"
)

// SweepConfig parameterizes a multi-seed replicate sweep: the same
// scenario re-run under Replicates independent RNG streams derived from
// Base.Seed, so confidence intervals come from seed diversity rather
// than one lucky stream.
type SweepConfig struct {
	// Base is the per-replicate scenario. Its Seed is the sweep's root
	// seed; replicate i runs with par.Derive(Seed, i). Trace and Obs
	// must be nil — a sweep's replicates run concurrently and the
	// single-run sinks are not meaningfully mergeable.
	Base InventoryConfig
	// Replicates is how many independent runs to execute (must be > 0).
	Replicates int
	// NewNetwork builds a fresh network per replicate. Replicates run
	// concurrently on Base.Pool, so sharing one Network (whose MAC and
	// energy meters mutate during a run) would race; the factory keeps
	// every replicate hermetic.
	NewNetwork func() (*Network, error)
	// Ctx cancels the sweep early; nil means never.
	Ctx context.Context
}

// Replicate is one finished run of a sweep.
type Replicate struct {
	Index  int
	Seed   int64 // derived seed the run actually used
	Report *InventoryReport
}

// SweepReport aggregates a replicate sweep. All aggregates are computed
// in replicate-index order, so the report is identical at any pool
// size.
type SweepReport struct {
	RootSeed   int64
	Replicates []Replicate

	GoodputMeanBps   float64
	GoodputStdDevBps float64 // sample std-dev (0 for a single replicate)
	MeanDiscovered   float64
	FramesOK         int
	FramesLost       int
}

// RunSweep executes cfg.Replicates independent inventory runs, sharded
// across cfg.Base.Pool (serial when nil). Replicate i derives its seed
// as par.Derive(Base.Seed, i) — a schedule-independent stream — and the
// results merge by ascending index, so the report is byte-identical
// whatever the worker count.
func RunSweep(cfg SweepConfig) (*SweepReport, error) {
	if cfg.NewNetwork == nil {
		return nil, fmt.Errorf("sim: sweep requires a NewNetwork factory")
	}
	if cfg.Replicates <= 0 {
		return nil, fmt.Errorf("sim: sweep replicates must be positive (got %d)", cfg.Replicates)
	}
	if cfg.Base.Trace != nil || cfg.Base.Obs != nil {
		return nil, fmt.Errorf("sim: sweep replicates cannot share a Trace or Obs sink")
	}
	reps := make([]Replicate, cfg.Replicates)
	err := cfg.Base.Pool.Map(cfg.Ctx, cfg.Replicates, func(i int) error {
		run := cfg.Base
		run.Seed = par.Derive(cfg.Base.Seed, uint64(i))
		run.Pool = nil
		net, err := cfg.NewNetwork()
		if err != nil {
			return fmt.Errorf("replicate %d: %w", i, err)
		}
		rep, err := RunInventory(net, run)
		if err != nil {
			return fmt.Errorf("replicate %d: %w", i, err)
		}
		reps[i] = Replicate{Index: i, Seed: run.Seed, Report: rep}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &SweepReport{RootSeed: cfg.Base.Seed, Replicates: reps}
	var goodputSum, discSum float64
	for _, r := range reps {
		goodputSum += r.Report.GoodputBps
		discSum += float64(r.Report.Discovered)
		out.FramesOK += r.Report.FramesOK
		out.FramesLost += r.Report.FramesLost
	}
	n := float64(len(reps))
	out.GoodputMeanBps = goodputSum / n
	out.MeanDiscovered = discSum / n
	if len(reps) > 1 {
		var ss float64
		for _, r := range reps {
			d := r.Report.GoodputBps - out.GoodputMeanBps
			ss += d * d
		}
		out.GoodputStdDevBps = math.Sqrt(ss / (n - 1))
	}
	return out, nil
}
