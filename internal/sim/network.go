package sim

import (
	"fmt"
	"math"
	"sort"

	"mmtag/internal/antenna"
	"mmtag/internal/ap"
	"mmtag/internal/channel"
	"mmtag/internal/mac"
	"mmtag/internal/obs"
	"mmtag/internal/tag"
)

// Placement positions one tag in the AP's polar frame.
type Placement struct {
	// Device is the tag hardware model.
	Device *tag.Tag
	// DistanceM is the AP-tag range.
	DistanceM float64
	// AzimuthRad is the direction of the tag as seen from the AP
	// (radians from the AP array's broadside).
	AzimuthRad float64
	// OrientationRad is the incidence angle at the tag: the angle
	// between the tag array's broadside and the direction back to the
	// AP. Zero means the tag faces the AP squarely.
	OrientationRad float64
	// ExtraLossDB is additional one-way link loss applied on top of the
	// propagation model — the hook the mobility runner uses for
	// blockage episodes (a human body at mmWave costs 20-40 dB).
	ExtraLossDB float64
}

// Interferer is a co-channel transmitter (a neighbouring AP) whose
// carrier raises the victim AP's interference floor. Its contribution
// depends on the victim's current beam: an interferer in the beam's
// direction couples through the main lobe; elsewhere only through
// sidelobes.
type Interferer struct {
	// AzimuthRad is the interferer's bearing from the victim AP.
	AzimuthRad float64
	// DistanceM is its range from the victim AP.
	DistanceM float64
	// EIRPW is the interferer's radiated power toward the victim
	// (transmit power × its antenna gain in this direction), watts.
	EIRPW float64
}

// Network is an AP plus a set of placed tags over a propagation model.
// It implements mac.Medium from first principles: every SNR the MAC sees
// comes out of the monostatic backscatter link budget.
type Network struct {
	AP          *ap.AP
	PathLoss    channel.PathLoss
	tags        map[uint8]*Placement
	interferers []Interferer

	// Instrumentation (all nil-safe; see Instrument).
	linkObs    *channel.LinkObs
	snrQueries *obs.Counter
	inaudible  *obs.Counter
}

// NewNetwork builds an empty network around an AP. A nil pathloss means
// free space at the AP's carrier.
func NewNetwork(a *ap.AP, pl channel.PathLoss) (*Network, error) {
	if a == nil {
		return nil, fmt.Errorf("sim: AP is required")
	}
	if pl == nil {
		pl = channel.FreeSpace{FreqHz: a.Config().FreqHz}
	}
	return &Network{AP: a, PathLoss: pl, tags: make(map[uint8]*Placement)}, nil
}

// Instrument meters the network's link-budget activity into the
// handle's registry: per-query counters plus the channel-level budget
// instruments threaded into every Link it builds. Nil handles no-op.
func (n *Network) Instrument(h *obs.Handle) {
	reg := h.Registry()
	if reg == nil {
		return
	}
	n.linkObs = channel.NewLinkObs(reg)
	n.snrQueries = reg.Counter("sim_snr_queries_total",
		"MAC-visible SNR queries answered by the network.")
	n.inaudible = reg.Counter("sim_snr_inaudible_total",
		"SNR queries answered inaudible (out of range, rate unusable).")
}

// AddTag places a tag. IDs must be unique; distance must be positive.
func (n *Network) AddTag(p Placement) error {
	if p.Device == nil {
		return fmt.Errorf("sim: placement needs a device")
	}
	if p.DistanceM <= 0 {
		return fmt.Errorf("sim: tag distance must be positive, got %g", p.DistanceM)
	}
	id := p.Device.ID()
	if _, dup := n.tags[id]; dup {
		return fmt.Errorf("sim: duplicate tag ID %d", id)
	}
	n.tags[id] = &p
	return nil
}

// TagCount returns the number of placed tags.
func (n *Network) TagCount() int { return len(n.tags) }

// Placement returns a tag's placement.
func (n *Network) Placement(id uint8) (*Placement, bool) {
	p, ok := n.tags[id]
	return p, ok
}

// Tags implements mac.Medium.
func (n *Network) Tags() []uint8 {
	out := make([]uint8, 0, len(n.tags))
	for id := range n.tags {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddInterferer registers a co-channel transmitter.
func (n *Network) AddInterferer(i Interferer) error {
	if i.DistanceM <= 0 || i.EIRPW <= 0 {
		return fmt.Errorf("sim: interferer needs positive distance and EIRP")
	}
	n.interferers = append(n.interferers, i)
	return nil
}

// InterferenceW returns the total co-channel interference power at the
// victim receiver for the AP's current steering.
func (n *Network) interferenceW() float64 {
	total := 0.0
	for _, i := range n.interferers {
		rxGain := n.AP.GainToward(i.AzimuthRad)
		total += i.EIRPW * rxGain / n.PathLoss.Loss(i.DistanceM)
	}
	return total
}

// link assembles the budget for a tag under a given beam and modulation
// efficiency.
func (n *Network) link(p *Placement, beamRad, efficiency float64) *channel.Link {
	n.AP.Steer(beamRad)
	return &channel.Link{
		Obs:           n.linkObs,
		InterferenceW: n.interferenceW(),
		FreqHz:        n.AP.Config().FreqHz,
		TxPowerW:      n.AP.Config().TxPowerW,
		APGain:        n.AP.GainToward(p.AzimuthRad),
		Reflector:     p.Device.Array(),
		TagAngleRad:   p.OrientationRad,
		DistanceM:     p.DistanceM,
		PathLoss:      n.PathLoss,
		ModEfficiency: efficiency,
		NoiseFigureDB: n.AP.Config().NoiseFigureDB,
		MiscLossDB:    p.ExtraLossDB,
	}
}

// SNR implements mac.Medium: the uplink SNR in the rate's symbol-rate
// noise bandwidth, plus whether the tag's envelope detector hears the
// query at all. Rates the tag hardware cannot produce — a different
// alphabet than its switch network implements, or a symbol rate beyond
// its switch rise time — report as inaudible so the MAC never selects
// them.
func (n *Network) SNR(tagID uint8, beamRad float64, r mac.Rate) (float64, bool) {
	n.snrQueries.Inc()
	p, ok := n.tags[tagID]
	if !ok {
		n.inaudible.Inc()
		return 0, false
	}
	if r.SymbolRate() > p.Device.MaxSymbolRate() {
		n.inaudible.Inc()
		return 0, false
	}
	// Alphabet capability: a rate is usable natively when it names the
	// tag's own alphabet, and any 1-bit/symbol rate is usable on any tag
	// (binary signalling over two of its termination states, the same
	// mechanism the sync preamble uses). Higher-order rates on a tag
	// without that switch network are not producible.
	if r.Mod.Name != p.Device.Modulation().Name() && r.Mod.BitsPerSymbol != 1 {
		n.inaudible.Inc()
		return 0, false
	}
	eff := r.Mod.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	l := n.link(p, beamRad, eff)
	incident, err := l.TagIncidentPowerW()
	if err != nil || !p.Device.CanHear(incident) {
		n.inaudible.Inc()
		return 0, false
	}
	snr, err := l.SNR(r.SymbolRate())
	if err != nil {
		n.inaudible.Inc()
		return 0, false
	}
	return snr, true
}

// UplinkSNRdB returns the budget SNR in dB for diagnostics/experiments,
// steering the beam straight at the tag.
func (n *Network) UplinkSNRdB(tagID uint8, bandwidthHz, efficiency float64) (float64, error) {
	p, ok := n.tags[tagID]
	if !ok {
		return 0, fmt.Errorf("sim: unknown tag %d", tagID)
	}
	return n.link(p, p.AzimuthRad, efficiency).SNRdB(bandwidthHz)
}

// SDMGroups partitions the known tag IDs into groups that can be served
// concurrently by separate beams: within a group, every pair is
// separated in azimuth by at least minSepRad (greedy first-fit by
// azimuth). Tags in the same group get simultaneous slots; the number
// of groups is the TDMA cycle length under SDM.
func (n *Network) SDMGroups(ids []uint8, minSepRad float64) [][]uint8 {
	type entry struct {
		id uint8
		az float64
	}
	entries := make([]entry, 0, len(ids))
	for _, id := range ids {
		if p, ok := n.tags[id]; ok {
			entries = append(entries, entry{id, p.AzimuthRad})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].az < entries[j].az })
	var groups [][]uint8
	var groupLastAz []float64
	for _, e := range entries {
		placed := false
		for g := range groups {
			if math.Abs(e.az-groupLastAz[g]) >= minSepRad {
				groups[g] = append(groups[g], e.id)
				groupLastAz[g] = e.az
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []uint8{e.id})
			groupLastAz = append(groupLastAz, e.az)
		}
	}
	return groups
}

// BeamSeparation returns the AP's half-power beamwidth, the natural
// minimum SDM separation.
func (n *Network) BeamSeparation() float64 {
	return n.AP.Array().HalfPowerBeamwidth()
}

// Codebook returns the AP's discovery beams covering ±sector.
func (n *Network) Codebook(sectorRad float64) []float64 {
	return n.AP.Beams(sectorRad)
}

// Deg re-exports the degree conversion for callers building placements.
func Deg(d float64) float64 { return antenna.Deg(d) }
