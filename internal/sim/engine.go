// Package sim ties the mmTag pieces into a running network: a
// discrete-event engine, an environment of placed tags around an access
// point, a mac.Medium implementation backed by the full link budget, and
// inventory/streaming scenario runners used by the examples and the
// evaluation harness.
//
// DESIGN.md: section 6 (simulation methodology) and section 3 (module
// inventory); section 7's deployment layer runs one of these per AP cell.
package sim

import (
	"container/heap"
	"fmt"

	"mmtag/internal/obs"
)

// Engine is a minimal discrete-event scheduler. Events fire in time
// order; ties fire in scheduling order (stable).
type Engine struct {
	now   float64
	seq   uint64
	queue eventQueue

	// fired/scheduled meter the event loop when instrumented (nil-safe).
	fired     *obs.Counter
	scheduled *obs.Counter
	simTime   *obs.Gauge
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Instrument meters the event loop into reg: events scheduled and
// fired, and the advancing simulation clock. Nil registries no-op.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.scheduled = reg.Counter("sim_engine_scheduled_total",
		"Events pushed onto the discrete-event queue.")
	e.fired = reg.Counter("sim_engine_fired_total",
		"Events executed by the discrete-event loop.")
	e.simTime = reg.Gauge("sim_time_seconds",
		"Current simulated time.")
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule queues fn to run delay seconds from now. Negative delays are
// a programming error.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + delay, seq: e.seq, fn: fn})
	e.scheduled.Inc()
}

// Step runs the next event, returning false when the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.fn()
	e.fired.Inc()
	e.simTime.Set(e.now)
	return true
}

// RunUntil processes events until the queue empties or the next event
// would fire after t; the clock then advances to t.
func (e *Engine) RunUntil(t float64) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	e.simTime.Set(e.now)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
