package sim

import (
	"fmt"
	"reflect"
	"testing"

	"mmtag/internal/ap"
	"mmtag/internal/obs"
	"mmtag/internal/par"
	"mmtag/internal/tag"
	"mmtag/internal/trace"
	"mmtag/internal/vanatta"
)

// sweepFactory returns a NewNetwork closure placing n tags across the
// sector. It builds everything through error returns (no t.Fatal)
// because sweeps invoke it from pool worker goroutines.
func sweepFactory(t *testing.T, n int) func() (*Network, error) {
	t.Helper()
	return func() (*Network, error) {
		a, err := ap.New(ap.Config{})
		if err != nil {
			return nil, err
		}
		net, err := NewNetwork(a, nil)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			arr, err := vanatta.New(vanatta.Config{Elements: 8, InsertionLossDB: 1.5})
			if err != nil {
				return nil, err
			}
			tg, err := tag.New(tag.Config{
				ID:             uint8(i + 1),
				Array:          arr,
				Modulation:     vanatta.OOK(),
				SwitchRiseTime: 2e-9,
			})
			if err != nil {
				return nil, err
			}
			az := -40.0 + 80.0*float64(i)/float64(max(n-1, 1))
			if err := net.AddTag(Placement{Device: tg, DistanceM: 2.5, AzimuthRad: Deg(az)}); err != nil {
				return nil, err
			}
		}
		return net, nil
	}
}

// TestRunSweepEdgeCasesSerialParallelAgree drives the sweep through
// configuration corners (empty network, defaulted duration, more RF
// chains than tags, negative root seed) and demands, for each, that a
// pooled sweep reproduces the serial sweep exactly and that the serial
// sweep is itself deterministic.
func TestRunSweepEdgeCasesSerialParallelAgree(t *testing.T) {
	cases := []struct {
		name string
		tags int
		base InventoryConfig
	}{
		{"zero_tags", 0, InventoryConfig{Duration: 0.02, Seed: 42}},
		{"zero_duration_defaults", 1, InventoryConfig{Seed: 42}},
		{"chains_exceed_tags", 2, InventoryConfig{Duration: 0.02, Seed: 42, SDM: true, SDMChains: 8}},
		{"negative_seed", 3, InventoryConfig{Duration: 0.02, Seed: -42}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const replicates = 3
			serial := func() *SweepReport {
				rep, err := RunSweep(SweepConfig{
					Base:       tc.base,
					Replicates: replicates,
					NewNetwork: sweepFactory(t, tc.tags),
				})
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			first, second := serial(), serial()
			if !reflect.DeepEqual(first, second) {
				t.Fatal("serial sweep is not deterministic")
			}
			pool := par.New(par.Config{Workers: 4})
			defer pool.Close()
			base := tc.base
			base.Pool = pool
			pooled, err := RunSweep(SweepConfig{
				Base:       base,
				Replicates: replicates,
				NewNetwork: sweepFactory(t, tc.tags),
			})
			if err != nil {
				t.Fatal(err)
			}
			// The recorded config differs only in the transient Pool
			// pointer; the reports themselves must match exactly.
			if !reflect.DeepEqual(first, pooled) {
				t.Fatalf("pooled sweep diverges from serial:\nserial: %+v\npooled: %+v", first, pooled)
			}
			for i, r := range pooled.Replicates {
				if r.Index != i {
					t.Fatalf("replicate %d has index %d", i, r.Index)
				}
				if want := par.Derive(tc.base.Seed, uint64(i)); r.Seed != want {
					t.Fatalf("replicate %d seed %d, want Derive(%d, %d) = %d",
						i, r.Seed, tc.base.Seed, i, want)
				}
				if r.Report == nil {
					t.Fatalf("replicate %d has no report", i)
				}
			}
		})
	}
}

// TestRunSweepAggregates checks the index-order aggregation matches a
// hand recomputation from the replicate reports.
func TestRunSweepAggregates(t *testing.T) {
	rep, err := RunSweep(SweepConfig{
		Base:       InventoryConfig{Duration: 0.02, Seed: 7},
		Replicates: 4,
		NewNetwork: sweepFactory(t, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	framesOK := 0
	for _, r := range rep.Replicates {
		sum += r.Report.GoodputBps
		framesOK += r.Report.FramesOK
	}
	if got, want := rep.GoodputMeanBps, sum/4; got != want {
		t.Fatalf("mean goodput %g, want %g", got, want)
	}
	if rep.FramesOK != framesOK {
		t.Fatalf("frames ok %d, want %d", rep.FramesOK, framesOK)
	}
	if rep.FramesOK == 0 {
		t.Fatal("sweep delivered no frames")
	}
	if rep.GoodputStdDevBps < 0 {
		t.Fatalf("negative std dev %g", rep.GoodputStdDevBps)
	}
	seeds := map[int64]bool{}
	for _, r := range rep.Replicates {
		seeds[r.Seed] = true
	}
	if len(seeds) != 4 {
		t.Fatalf("replicate seeds not distinct: %v", seeds)
	}
}

func TestRunSweepValidation(t *testing.T) {
	factory := sweepFactory(t, 1)
	for name, cfg := range map[string]SweepConfig{
		"nil_factory":     {Base: InventoryConfig{}, Replicates: 2},
		"zero_replicates": {Base: InventoryConfig{}, Replicates: 0, NewNetwork: factory},
		"trace_sink":      {Base: InventoryConfig{Trace: trace.NewRecorder(16)}, Replicates: 2, NewNetwork: factory},
		"obs_sink":        {Base: InventoryConfig{Obs: obs.NewHandle(obs.NewRegistry(), nil)}, Replicates: 2, NewNetwork: factory},
	} {
		if _, err := RunSweep(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestRunSweepReplicateErrorIsDeterministic checks a failing replicate
// surfaces with its index regardless of pool size.
func TestRunSweepReplicateErrorIsDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			var pool *par.Pool
			if workers > 1 {
				pool = par.New(par.Config{Workers: workers})
				defer pool.Close()
			}
			_, err := RunSweep(SweepConfig{
				Base:       InventoryConfig{Duration: 0.01, Seed: 1, Pool: pool},
				Replicates: 4,
				NewNetwork: func() (*Network, error) {
					return nil, fmt.Errorf("factory refused")
				},
			})
			if err == nil {
				t.Fatal("expected error")
			}
		})
	}
}
