package frame

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanicsOnGarbage feeds arbitrary bit soup to the
// decoder: it must always return an error or a well-formed frame, never
// panic or over-read.
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, coded := range []bool{false, true} {
		opts := Options{Coded: coded}
		for trial := 0; trial < 500; trial++ {
			n := rng.Intn(4000)
			bits := make([]byte, n)
			for i := range bits {
				bits[i] = byte(rng.Intn(2))
			}
			f, consumed, err := DecodeBits(bits, opts)
			if err != nil {
				continue
			}
			// A successful decode must be internally consistent.
			if consumed <= 0 || consumed > len(bits) {
				t.Fatalf("consumed %d of %d", consumed, len(bits))
			}
			if len(f.Payload) > MaxPayload {
				t.Fatalf("payload %d exceeds max", len(f.Payload))
			}
		}
	}
}

// TestDecodeNeverPanicsProperty is the quick-check variant over random
// byte-derived bit streams.
func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte, coded bool) bool {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		_, consumed, err := DecodeBits(bits, Options{Coded: coded})
		return err != nil || (consumed > 0 && consumed <= len(bits))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionNeverYieldsWrongPayload flips random bursts in valid
// frames: the decoder may fail, or (rarely, when FEC fixes everything)
// succeed — but a "successful" decode must return the original payload
// or be flagged by the CRC. An undetected wrong payload is the one
// unacceptable outcome.
func TestCorruptionNeverYieldsWrongPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		coded := trial%2 == 0
		opts := Options{Coded: coded}
		payload := make([]byte, 32+rng.Intn(64))
		rng.Read(payload)
		f := &Frame{Type: TypeData, TagID: 9, Payload: payload}
		bits, err := f.EncodeBits(opts)
		if err != nil {
			t.Fatal(err)
		}
		// Random burst: position and length.
		start := rng.Intn(len(bits))
		length := 1 + rng.Intn(32)
		for i := start; i < start+length && i < len(bits); i++ {
			bits[i] ^= 1
		}
		got, _, err := DecodeBits(bits, opts)
		if err != nil {
			continue // detected: fine
		}
		if got.TagID == 9 && !bytes.Equal(got.Payload, payload) {
			t.Fatalf("trial %d (coded=%v): undetected payload corruption", trial, coded)
		}
	}
}

// TestHeaderLengthFieldAbuse builds a frame whose header length field
// is corrupted to a larger value: the decoder must not read past the
// provided bits.
func TestHeaderLengthFieldAbuse(t *testing.T) {
	f := &Frame{Type: TypeData, TagID: 1, Payload: []byte{1, 2, 3}}
	bits, _ := f.EncodeBits(Options{})
	// Flip multiple header bits to scramble the length field (Hamming
	// corrects one per block; hit several blocks).
	for _, pos := range []int{31, 38, 45, 52} {
		bits[pos] ^= 1
	}
	// Whatever the decoder concludes, it must not panic and must bound
	// its reads by len(bits).
	_, consumed, err := DecodeBits(bits, Options{})
	if err == nil && consumed > len(bits) {
		t.Fatal("decoder over-read")
	}
}
