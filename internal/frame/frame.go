// Package frame defines the mmTag air frame: a PN preamble for detection
// and timing, a Hamming-protected header, a payload that is scrambled
// and optionally convolutionally coded, and a CRC-16 trailer.
//
// The framer deals in bits ([]byte of 0/1 values) so that the PHY layer
// is free to map them onto whichever backscatter alphabet the link
// adaptation selected.
//
// DESIGN.md: section 1 (air interface reconstruction) and section 3 (module
// inventory).
package frame

import (
	"errors"
	"fmt"

	"mmtag/internal/fec"
)

// Type discriminates frame purposes in the MAC protocol.
type Type uint8

// Frame types.
const (
	TypeData  Type = iota // tag payload data
	TypeProbe             // discovery probe response
	TypeAck               // acknowledgement
	TypePoll              // poll response metadata
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeProbe:
		return "probe"
	case TypeAck:
		return "ack"
	case TypePoll:
		return "poll"
	default:
		return fmt.Sprintf("type-%d", uint8(t))
	}
}

// MaxPayload is the largest payload an mmTag frame can carry, bounded by
// the 12-bit length field.
const MaxPayload = 4095

// headerBits is the raw header size: 2 type + 8 tag + 8 seq + 12 length
// + 2 reserved = 32 bits (Hamming-coded to 56 on air).
const headerBits = 32

// Options configures encoding.
type Options struct {
	// Coded enables the rate-1/2 convolutional code + interleaver over
	// the payload and CRC.
	Coded bool
	// ScramblerSeed seeds the payload scrambler; 0x5D if zero.
	ScramblerSeed byte
}

func (o Options) seed() byte {
	if o.ScramblerSeed&0x7F == 0 {
		return 0x5D
	}
	return o.ScramblerSeed & 0x7F
}

// Frame is one mmTag air frame.
type Frame struct {
	Type    Type
	TagID   uint8
	Seq     uint8
	Payload []byte
}

// Errors returned by Decode.
var (
	ErrHeaderCRC  = errors.New("frame: header parity failure")
	ErrPayloadCRC = errors.New("frame: payload CRC mismatch")
	ErrTruncated  = errors.New("frame: bit stream truncated")
)

// bytesToBits expands bytes MSB-first.
func bytesToBits(dst []byte, data []byte) []byte {
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			dst = append(dst, (b>>i)&1)
		}
	}
	return dst
}

// bitsToBytes packs bits MSB-first; len(bits) must be a multiple of 8.
func bitsToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("frame: bit count %d not a multiple of 8", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return out, nil
}

// EncodeBits serializes the frame into air bits (excluding the
// preamble, which the PHY prepends). Layout:
//
//	header (32 bits Hamming-coded to 56)
//	body   (payload ++ CRC16, scrambled; conv-coded+interleaved if Coded)
func (f *Frame) EncodeBits(opts Options) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("frame: payload %d bytes exceeds maximum %d", len(f.Payload), MaxPayload)
	}
	// Header fields, MSB-first.
	hdr := make([]byte, 0, headerBits)
	put := func(v uint, bits int) {
		for i := bits - 1; i >= 0; i-- {
			hdr = append(hdr, byte((v>>i)&1))
		}
	}
	put(uint(f.Type)&3, 2)
	put(uint(f.TagID), 8)
	put(uint(f.Seq), 8)
	put(uint(len(f.Payload)), 12)
	put(0, 2) // reserved
	codedHdr, err := fec.HammingEncode(nil, hdr)
	if err != nil {
		return nil, err
	}

	// Body: payload bytes + CRC16 over payload.
	crc := fec.CRC16(f.Payload)
	body := append(append([]byte{}, f.Payload...), byte(crc>>8), byte(crc))
	bodyBits := bytesToBits(nil, body)

	// Scramble.
	scr, err := fec.NewScrambler(opts.seed())
	if err != nil {
		return nil, err
	}
	bodyBits = scr.Apply(nil, bodyBits)

	if opts.Coded {
		coded := fec.ConvEncode(nil, bodyBits)
		// Pad to the interleaver block and record padding implicitly:
		// the decoder derives the coded length from the header length
		// field, so padding is deterministic.
		il := bodyInterleaver()
		pad := (il.BlockSize() - len(coded)%il.BlockSize()) % il.BlockSize()
		coded = append(coded, make([]byte, pad)...)
		coded, err = il.Interleave(nil, coded)
		if err != nil {
			return nil, err
		}
		bodyBits = coded
	}
	return append(codedHdr, bodyBits...), nil
}

// bodyInterleaver returns the fixed payload interleaver geometry.
func bodyInterleaver() *fec.BlockInterleaver {
	il, err := fec.NewBlockInterleaver(8, 16)
	if err != nil {
		panic("frame: interleaver construction cannot fail: " + err.Error())
	}
	return il
}

// codedBodyBits returns the on-air body length in bits for a payload of
// n bytes under opts.
func codedBodyBits(n int, opts Options) int {
	raw := (n + 2) * 8 // payload + CRC16
	if !opts.Coded {
		return raw
	}
	coded := 2 * (raw + fec.ConvTailBits())
	block := bodyInterleaver().BlockSize()
	pad := (block - coded%block) % block
	return coded + pad
}

// AirBits returns the total number of bits EncodeBits will produce for a
// payload of n bytes.
func AirBits(n int, opts Options) int {
	const codedHeader = headerBits / 4 * 7 // 56-bit coded header
	return codedHeader + codedBodyBits(n, opts)
}

// DecodeBits parses a frame from air bits. The bit slice must begin at
// the first header bit (frame sync is the PHY's job) and contain at
// least the whole frame; trailing bits are ignored. It returns the
// decoded frame and the number of bits consumed.
func DecodeBits(bits []byte, opts Options) (*Frame, int, error) {
	const codedHeader = headerBits / 4 * 7
	if len(bits) < codedHeader {
		return nil, 0, ErrTruncated
	}
	hdr, _, err := fec.HammingDecode(nil, bits[:codedHeader])
	if err != nil {
		return nil, 0, err
	}
	get := func(off, n int) uint {
		v := uint(0)
		for i := 0; i < n; i++ {
			v = v<<1 | uint(hdr[off+i])
		}
		return v
	}
	f := &Frame{
		Type:  Type(get(0, 2)),
		TagID: uint8(get(2, 8)),
		Seq:   uint8(get(10, 8)),
	}
	payLen := int(get(18, 12))
	reserved := get(30, 2)
	if reserved != 0 {
		// The reserved bits double as a weak header checksum: Hamming
		// corrects single errors, so surviving damage shows up here.
		return nil, 0, ErrHeaderCRC
	}

	bodyLen := codedBodyBits(payLen, opts)
	total := codedHeader + bodyLen
	if len(bits) < total {
		return nil, 0, ErrTruncated
	}
	body := bits[codedHeader:total]

	if opts.Coded {
		il := bodyInterleaver()
		deinter, err := il.Deinterleave(nil, body)
		if err != nil {
			return nil, 0, err
		}
		// Strip the interleaver padding before Viterbi: the true coded
		// stream length is 2*(raw + tail).
		raw := (payLen + 2) * 8
		codedLen := 2 * (raw + fec.ConvTailBits())
		decoded, err := fec.ViterbiDecode(deinter[:codedLen])
		if err != nil {
			return nil, 0, err
		}
		body = decoded
	}

	// Descramble.
	scr, err := fec.NewScrambler(opts.seed())
	if err != nil {
		return nil, 0, err
	}
	body = scr.Apply(nil, body)

	raw, err := bitsToBytes(body)
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < payLen+2 {
		return nil, 0, ErrTruncated
	}
	payload := raw[:payLen]
	gotCRC := uint16(raw[payLen])<<8 | uint16(raw[payLen+1])
	if gotCRC != fec.CRC16(payload) {
		return nil, 0, ErrPayloadCRC
	}
	f.Payload = append([]byte{}, payload...)
	return f, total, nil
}

// DecodeBitsSoft parses a coded frame from per-bit soft levels (0 =
// confident zero, 1 = confident one, 0.5 = erased), recovering the
// standard ~2 dB soft-decision Viterbi gain over DecodeBits. The header
// is decided hard (it is Hamming-protected, not convolutional); the
// body levels flow through deinterleaving into the soft Viterbi
// decoder. opts.Coded must be set — an uncoded body has no soft path.
func DecodeBitsSoft(levels []float64, opts Options) (*Frame, int, error) {
	if !opts.Coded {
		return nil, 0, fmt.Errorf("frame: soft decoding requires the coded mode")
	}
	// Hard-threshold everything once for the header fields.
	hard := make([]byte, len(levels))
	for i, v := range levels {
		if v > 0.5 {
			hard[i] = 1
		}
	}
	const codedHeader = headerBits / 4 * 7
	if len(levels) < codedHeader {
		return nil, 0, ErrTruncated
	}
	hdr, _, err := fec.HammingDecode(nil, hard[:codedHeader])
	if err != nil {
		return nil, 0, err
	}
	get := func(off, n int) uint {
		v := uint(0)
		for i := 0; i < n; i++ {
			v = v<<1 | uint(hdr[off+i])
		}
		return v
	}
	f := &Frame{
		Type:  Type(get(0, 2)),
		TagID: uint8(get(2, 8)),
		Seq:   uint8(get(10, 8)),
	}
	payLen := int(get(18, 12))
	if get(30, 2) != 0 {
		return nil, 0, ErrHeaderCRC
	}
	bodyLen := codedBodyBits(payLen, opts)
	total := codedHeader + bodyLen
	if len(levels) < total {
		return nil, 0, ErrTruncated
	}
	il := bodyInterleaver()
	deinter, err := il.DeinterleaveSoft(nil, levels[codedHeader:total])
	if err != nil {
		return nil, 0, err
	}
	raw := (payLen + 2) * 8
	codedLen := 2 * (raw + fec.ConvTailBits())
	decoded, err := fec.ViterbiDecodeSoft(deinter[:codedLen])
	if err != nil {
		return nil, 0, err
	}
	scr, err := fec.NewScrambler(opts.seed())
	if err != nil {
		return nil, 0, err
	}
	body := scr.Apply(nil, decoded)
	rawBytes, err := bitsToBytes(body)
	if err != nil {
		return nil, 0, err
	}
	if len(rawBytes) < payLen+2 {
		return nil, 0, ErrTruncated
	}
	payload := rawBytes[:payLen]
	gotCRC := uint16(rawBytes[payLen])<<8 | uint16(rawBytes[payLen+1])
	if gotCRC != fec.CRC16(payload) {
		return nil, 0, ErrPayloadCRC
	}
	f.Payload = append([]byte{}, payload...)
	return f, total, nil
}

// Preamble returns the n-bit PN preamble (0/1 values) generated by a
// 7-bit maximal-length LFSR, identical at AP and tag. The sequence has
// the sharp autocorrelation needed for frame sync.
func Preamble(n int) []byte {
	state := byte(0x5A)
	out := make([]byte, n)
	for i := range out {
		fb := ((state >> 6) ^ (state >> 5)) & 1 // x^7 + x^6 + 1
		state = (state<<1 | fb) & 0x7F
		out[i] = fb
	}
	return out
}

// PreambleSymbols maps the preamble bits onto BPSK points (+1/-1) for
// correlation at the AP.
func PreambleSymbols(n int) []complex128 {
	bits := Preamble(n)
	out := make([]complex128, n)
	for i, b := range bits {
		if b != 0 {
			out[i] = -1
		} else {
			out[i] = 1
		}
	}
	return out
}
