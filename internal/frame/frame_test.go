package frame

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, coded := range []bool{false, true} {
		opts := Options{Coded: coded}
		f := func(seed int64, payLenRaw uint16, tagID, seq uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			payLen := int(payLenRaw) % 300
			payload := make([]byte, payLen)
			rng.Read(payload)
			in := &Frame{Type: TypeData, TagID: tagID, Seq: seq, Payload: payload}
			bits, err := in.EncodeBits(opts)
			if err != nil {
				return false
			}
			if len(bits) != AirBits(payLen, opts) {
				return false
			}
			out, consumed, err := DecodeBits(bits, opts)
			if err != nil || consumed != len(bits) {
				return false
			}
			return out.Type == in.Type && out.TagID == in.TagID &&
				out.Seq == in.Seq && bytes.Equal(out.Payload, in.Payload)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatalf("coded=%v: %v", coded, err)
		}
	}
}

func TestEmptyPayload(t *testing.T) {
	f := &Frame{Type: TypeAck, TagID: 7, Seq: 3}
	bits, err := f.EncodeBits(Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := DecodeBits(bits, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Payload) != 0 || out.Type != TypeAck {
		t.Fatalf("got %+v", out)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	f := &Frame{Payload: make([]byte, MaxPayload+1)}
	if _, err := f.EncodeBits(Options{}); err == nil {
		t.Fatal("oversize payload must error")
	}
	// Exactly max is fine.
	f.Payload = make([]byte, MaxPayload)
	if _, err := f.EncodeBits(Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	f := &Frame{Type: TypeData, Payload: []byte("hello")}
	bits, _ := f.EncodeBits(Options{})
	for _, cut := range []int{0, 10, 55, len(bits) - 1} {
		if _, _, err := DecodeBits(bits[:cut], Options{}); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeTrailingBitsIgnored(t *testing.T) {
	f := &Frame{Type: TypePoll, TagID: 1, Payload: []byte{1, 2, 3}}
	bits, _ := f.EncodeBits(Options{})
	n := len(bits)
	bits = append(bits, make([]byte, 100)...)
	out, consumed, err := DecodeBits(bits, Options{})
	if err != nil || consumed != n {
		t.Fatalf("consumed %d err %v, want %d nil", consumed, err, n)
	}
	if !bytes.Equal(out.Payload, []byte{1, 2, 3}) {
		t.Fatal("payload mismatch")
	}
}

func TestPayloadCorruptionDetected(t *testing.T) {
	f := &Frame{Type: TypeData, TagID: 5, Payload: []byte("payload under test")}
	bits, _ := f.EncodeBits(Options{})
	// Flip one payload bit (uncoded mode: direct hit).
	bits[60] ^= 1
	if _, _, err := DecodeBits(bits, Options{}); !errors.Is(err, ErrPayloadCRC) {
		t.Fatalf("err %v, want ErrPayloadCRC", err)
	}
}

func TestHeaderSingleBitErrorCorrected(t *testing.T) {
	f := &Frame{Type: TypeData, TagID: 0xAB, Seq: 9, Payload: []byte("x")}
	bits, _ := f.EncodeBits(Options{})
	// Hamming corrects any single error within each 7-bit header block.
	for pos := 0; pos < 56; pos++ {
		mutated := append([]byte{}, bits...)
		mutated[pos] ^= 1
		out, _, err := DecodeBits(mutated, Options{})
		if err != nil {
			t.Fatalf("header bit %d: %v", pos, err)
		}
		if out.TagID != 0xAB || out.Seq != 9 {
			t.Fatalf("header bit %d: fields corrupted", pos)
		}
	}
}

func TestCodedModeCorrectsPayloadErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	payload := make([]byte, 64)
	rng.Read(payload)
	f := &Frame{Type: TypeData, TagID: 2, Payload: payload}
	bits, err := f.EncodeBits(Options{Coded: true})
	if err != nil {
		t.Fatal(err)
	}
	// Flip scattered bits in the coded body (beyond the 56-bit header).
	for i := 80; i < len(bits); i += 97 {
		bits[i] ^= 1
	}
	out, _, err := DecodeBits(bits, Options{Coded: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Payload, payload) {
		t.Fatal("coded frame failed to correct scattered errors")
	}
}

func TestCodedModeCorrectsBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	payload := make([]byte, 64)
	rng.Read(payload)
	f := &Frame{Type: TypeData, Payload: payload}
	bits, _ := f.EncodeBits(Options{Coded: true})
	// An 8-bit burst in the body: the interleaver spreads it so Viterbi
	// can fix it.
	for i := 200; i < 208; i++ {
		bits[i] ^= 1
	}
	out, _, err := DecodeBits(bits, Options{Coded: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Payload, payload) {
		t.Fatal("burst not corrected")
	}
}

func TestScramblerSeedMismatchFails(t *testing.T) {
	f := &Frame{Type: TypeData, Payload: []byte("seeded")}
	bits, _ := f.EncodeBits(Options{ScramblerSeed: 0x11})
	if _, _, err := DecodeBits(bits, Options{ScramblerSeed: 0x22}); err == nil {
		t.Fatal("wrong descrambler seed must fail the CRC")
	}
	if _, _, err := DecodeBits(bits, Options{ScramblerSeed: 0x11}); err != nil {
		t.Fatalf("matching seed failed: %v", err)
	}
}

func TestAirBitsMatchesEncoding(t *testing.T) {
	for _, coded := range []bool{false, true} {
		for _, n := range []int{0, 1, 17, 255} {
			f := &Frame{Payload: make([]byte, n)}
			bits, err := f.EncodeBits(Options{Coded: coded})
			if err != nil {
				t.Fatal(err)
			}
			if got := AirBits(n, Options{Coded: coded}); got != len(bits) {
				t.Fatalf("coded=%v n=%d: AirBits %d, encoded %d", coded, n, got, len(bits))
			}
		}
	}
}

func TestCodedOverheadRatio(t *testing.T) {
	// Coded mode roughly doubles the body.
	plain := AirBits(256, Options{})
	coded := AirBits(256, Options{Coded: true})
	ratio := float64(coded-56) / float64(plain-56)
	if ratio < 1.9 || ratio > 2.2 {
		t.Fatalf("coded overhead ratio %g, want ~2", ratio)
	}
}

func TestPreambleProperties(t *testing.T) {
	p := Preamble(127)
	// Balanced: a maximal-length 7-bit LFSR emits 64 ones per period.
	ones := 0
	for _, b := range p {
		ones += int(b)
	}
	if ones != 64 {
		t.Fatalf("ones %d, want 64", ones)
	}
	// Deterministic.
	q := Preamble(127)
	if !bytes.Equal(p, q) {
		t.Fatal("preamble must be deterministic")
	}
}

func TestPreambleAutocorrelation(t *testing.T) {
	// The BPSK preamble autocorrelation must be sharply peaked: any
	// circular shift correlates near zero compared to lag 0.
	n := 127
	s := PreambleSymbols(n)
	corr := func(lag int) float64 {
		acc := 0.0
		for i := 0; i < n; i++ {
			acc += real(s[i]) * real(s[(i+lag)%n])
		}
		return acc
	}
	peak := corr(0)
	if peak != float64(n) {
		t.Fatalf("lag-0 autocorrelation %g, want %d", peak, n)
	}
	for lag := 1; lag < n; lag++ {
		if v := corr(lag); v > float64(n)/8 {
			t.Fatalf("autocorrelation at lag %d = %g too high", lag, v)
		}
	}
}

func TestTypeString(t *testing.T) {
	if TypeData.String() != "data" || TypeProbe.String() != "probe" ||
		TypeAck.String() != "ack" || TypePoll.String() != "poll" {
		t.Fatal("type names")
	}
	if Type(9).String() != "type-9" {
		t.Fatal("unknown type name")
	}
}

func BenchmarkEncodeCoded256(b *testing.B) {
	payload := make([]byte, 256)
	f := &Frame{Type: TypeData, Payload: payload}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.EncodeBits(Options{Coded: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCoded256(b *testing.B) {
	payload := make([]byte, 256)
	f := &Frame{Type: TypeData, Payload: payload}
	bits, _ := f.EncodeBits(Options{Coded: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeBits(bits, Options{Coded: true}); err != nil {
			b.Fatal(err)
		}
	}
}
