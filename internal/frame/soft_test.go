package frame

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"mmtag/internal/fec"
)

// softLevels converts encoded bits into noisy soft levels at the given
// Gaussian sigma.
func softLevels(bits []byte, sigma float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		out[i] = float64(b) + rng.NormFloat64()*sigma
	}
	return out
}

func hardFromLevels(levels []float64) []byte {
	out := make([]byte, len(levels))
	for i, v := range levels {
		if v > 0.5 {
			out[i] = 1
		}
	}
	return out
}

func TestDecodeBitsSoftCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	payload := make([]byte, 96)
	rng.Read(payload)
	f := &Frame{Type: TypeData, TagID: 5, Seq: 2, Payload: payload}
	bits, err := f.EncodeBits(Options{Coded: true})
	if err != nil {
		t.Fatal(err)
	}
	levels := make([]float64, len(bits))
	for i, b := range bits {
		levels[i] = float64(b)
	}
	got, consumed, err := DecodeBitsSoft(levels, Options{Coded: true})
	if err != nil || consumed != len(bits) {
		t.Fatalf("clean soft decode: %v (consumed %d)", err, consumed)
	}
	if got.TagID != 5 || !bytes.Equal(got.Payload, payload) {
		t.Fatal("frame corrupted")
	}
}

func TestSoftBeatsHardAtFrameLevel(t *testing.T) {
	// The headline property: at a channel quality where hard-decision
	// decoding starts losing frames, the soft path still delivers.
	rng := rand.New(rand.NewSource(62))
	const trials = 40
	const sigma = 0.42
	hardFails, softFails := 0, 0
	for i := 0; i < trials; i++ {
		payload := make([]byte, 64)
		rng.Read(payload)
		f := &Frame{Type: TypeData, TagID: 3, Payload: payload}
		bits, err := f.EncodeBits(Options{Coded: true})
		if err != nil {
			t.Fatal(err)
		}
		// Keep the header clean so both paths decode the same fields;
		// only the coded body sees the noise.
		levels := make([]float64, len(bits))
		for j, b := range bits {
			if j < 56 {
				levels[j] = float64(b)
			} else {
				levels[j] = float64(b) + rng.NormFloat64()*sigma
			}
		}
		if _, _, err := DecodeBits(hardFromLevels(levels), Options{Coded: true}); err != nil {
			hardFails++
		}
		if _, _, err := DecodeBitsSoft(levels, Options{Coded: true}); err != nil {
			softFails++
		}
	}
	if hardFails == 0 {
		t.Fatalf("channel too clean (sigma %g) to compare", sigma)
	}
	if softFails >= hardFails {
		t.Fatalf("soft decoding (%d fails) must beat hard (%d fails)", softFails, hardFails)
	}
}

func TestDecodeBitsSoftErrors(t *testing.T) {
	if _, _, err := DecodeBitsSoft(make([]float64, 100), Options{}); err == nil {
		t.Fatal("uncoded soft decode must error")
	}
	if _, _, err := DecodeBitsSoft(make([]float64, 10), Options{Coded: true}); !errors.Is(err, ErrTruncated) {
		t.Fatal("short stream must be ErrTruncated")
	}
	// A valid header but truncated body.
	f := &Frame{Type: TypeData, Payload: make([]byte, 32)}
	bits, _ := f.EncodeBits(Options{Coded: true})
	levels := make([]float64, len(bits))
	for i, b := range bits {
		levels[i] = float64(b)
	}
	if _, _, err := DecodeBitsSoft(levels[:len(levels)-8], Options{Coded: true}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated body: %v", err)
	}
}

func TestDeinterleaveSoftMatchesHard(t *testing.T) {
	il, err := fec.NewBlockInterleaver(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	bits := make([]byte, il.BlockSize()*2)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	inter, err := il.Interleave(nil, bits)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := il.Deinterleave(nil, inter)
	if err != nil {
		t.Fatal(err)
	}
	soft := make([]float64, len(inter))
	for i, b := range inter {
		soft[i] = float64(b)
	}
	softOut, err := il.DeinterleaveSoft(nil, soft)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hard {
		if float64(hard[i]) != softOut[i] {
			t.Fatalf("soft/hard deinterleave disagree at %d", i)
		}
	}
	if _, err := il.DeinterleaveSoft(nil, make([]float64, 5)); err == nil {
		t.Fatal("non-multiple soft length must error")
	}
}
