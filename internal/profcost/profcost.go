// Package profcost turns a Go CPU profile (gzipped pprof protobuf)
// into sorted per-function cost tables without external dependencies:
// a minimal wire-format decoder extracts samples, locations, functions
// and string-keyed sample labels, and the report groups flat/cumulative
// CPU time per function — per experiment when the producer tagged its
// work with a pprof "experiment" label (cmd/mmtag-bench does, through
// the internal/par pool's label propagation).
//
// DESIGN.md: section 8 (live observability and cost attribution);
// modeled on the sorted per-function report of xdebug-style log
// parsers, applied to pprof data.
package profcost

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Profile is the subset of a pprof CPU profile the cost report needs.
type Profile struct {
	// Samples are the raw stack samples.
	Samples []Sample
	// DurationNanos is the profiled wall time (0 when absent).
	DurationNanos int64
}

// Sample is one stack sample: CPU nanoseconds attributed to a stack of
// function names (leaf first) under an optional label set.
type Sample struct {
	// Stack holds function names, leaf first.
	Stack []string
	// CPUNanos is the sampled CPU time.
	CPUNanos int64
	// Labels are the sample's string labels (e.g. experiment=E3).
	Labels map[string]string
}

// FuncCost is one row of a cost table.
type FuncCost struct {
	// Function is the fully-qualified function name.
	Function string
	// Flat is CPU time sampled with the function at the leaf.
	Flat time.Duration
	// Cum is CPU time sampled with the function anywhere on the stack.
	Cum time.Duration
}

// Report is the per-function cost attribution of one label group.
type Report struct {
	// Group is the value of the grouping label ("" for unlabeled
	// samples).
	Group string
	// Total is the group's summed flat CPU time.
	Total time.Duration
	// Funcs is sorted by flat time descending (ties by name).
	Funcs []FuncCost
}

// ParseFile reads and parses a pprof CPU profile from disk.
func ParseFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Parse decodes a (possibly gzipped) pprof protobuf profile.
func Parse(r io.Reader) (*Profile, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("profcost: gunzip: %w", err)
		}
		if raw, err = io.ReadAll(zr); err != nil {
			return nil, fmt.Errorf("profcost: gunzip: %w", err)
		}
	}
	return decodeProfile(raw)
}

// Attribute groups samples by groupLabel (e.g. "experiment") and
// builds per-group function cost tables, groups sorted by total flat
// time descending. Samples without the label form the "" group.
func Attribute(p *Profile, groupLabel string) []*Report {
	type agg struct {
		flat, cum map[string]time.Duration
		total     time.Duration
	}
	groups := make(map[string]*agg)
	for _, s := range p.Samples {
		g := s.Labels[groupLabel]
		a := groups[g]
		if a == nil {
			a = &agg{flat: make(map[string]time.Duration), cum: make(map[string]time.Duration)}
			groups[g] = a
		}
		d := time.Duration(s.CPUNanos)
		a.total += d
		if len(s.Stack) > 0 {
			a.flat[s.Stack[0]] += d
		}
		seen := make(map[string]bool, len(s.Stack))
		for _, fn := range s.Stack {
			if !seen[fn] {
				seen[fn] = true
				a.cum[fn] += d
			}
		}
	}
	out := make([]*Report, 0, len(groups))
	for g, a := range groups {
		rep := &Report{Group: g, Total: a.total}
		for fn, flat := range a.flat {
			rep.Funcs = append(rep.Funcs, FuncCost{Function: fn, Flat: flat, Cum: a.cum[fn]})
		}
		// Functions that never sampled at the leaf still matter for cum.
		for fn, cum := range a.cum {
			if _, ok := a.flat[fn]; !ok {
				rep.Funcs = append(rep.Funcs, FuncCost{Function: fn, Cum: cum})
			}
		}
		sort.Slice(rep.Funcs, func(i, j int) bool {
			if rep.Funcs[i].Flat != rep.Funcs[j].Flat {
				return rep.Funcs[i].Flat > rep.Funcs[j].Flat
			}
			if rep.Funcs[i].Cum != rep.Funcs[j].Cum {
				return rep.Funcs[i].Cum > rep.Funcs[j].Cum
			}
			return rep.Funcs[i].Function < rep.Funcs[j].Function
		})
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Group < out[j].Group
	})
	return out
}

// Render writes the reports as aligned text tables, top n functions
// per group (n <= 0 keeps everything).
func Render(w io.Writer, reports []*Report, n int) {
	for _, rep := range reports {
		group := rep.Group
		if group == "" {
			group = "(unattributed)"
		}
		fmt.Fprintf(w, "cpu cost: %s (%s total)\n", group, rep.Total.Round(time.Microsecond))
		fmt.Fprintf(w, "  %10s %6s %10s  %s\n", "flat", "flat%", "cum", "function")
		funcs := rep.Funcs
		if n > 0 && len(funcs) > n {
			funcs = funcs[:n]
		}
		for _, fc := range funcs {
			pct := 0.0
			if rep.Total > 0 {
				pct = 100 * float64(fc.Flat) / float64(rep.Total)
			}
			fmt.Fprintf(w, "  %10s %5.1f%% %10s  %s\n",
				fc.Flat.Round(10*time.Microsecond), pct,
				fc.Cum.Round(10*time.Microsecond), fc.Function)
		}
		if n > 0 && len(rep.Funcs) > n {
			fmt.Fprintf(w, "  ... %d more functions\n", len(rep.Funcs)-n)
		}
		fmt.Fprintln(w)
	}
}

// --- pprof protobuf wire decoding -----------------------------------
//
// The profile.proto schema is stable; only the fields the cost report
// needs are decoded, everything else is skipped by wire type.

type location struct {
	id    uint64
	funcs []uint64 // function IDs, leaf line first
}

type rawSample struct {
	locIDs []uint64
	values []int64
	labels map[uint64]uint64 // key index -> value index, resolved later
}

// decodeProfile decodes an uncompressed profile message.
func decodeProfile(b []byte) (*Profile, error) {
	var (
		strTab     []string
		sampleType [][2]uint64 // (type, unit) string indices
		samples    []rawSample
		locs       = make(map[uint64]location)
		funcNames  = make(map[uint64]uint64) // function ID -> name index
		duration   int64
	)
	err := walkFields(b, func(field uint64, wire int, v uint64, payload []byte) error {
		switch field {
		case 1: // sample_type: ValueType
			var st [2]uint64
			if err := walkFields(payload, func(f uint64, w int, v uint64, p []byte) error {
				switch f {
				case 1:
					st[0] = v
				case 2:
					st[1] = v
				}
				return nil
			}); err != nil {
				return err
			}
			sampleType = append(sampleType, st)
		case 2: // sample
			s := rawSample{}
			if err := walkFields(payload, func(f uint64, w int, v uint64, p []byte) error {
				switch f {
				case 1: // location_id, packed or repeated
					s.locIDs = appendPackedUvarints(s.locIDs, w, v, p)
				case 2: // value
					for _, u := range appendPackedUvarints(nil, w, v, p) {
						s.values = append(s.values, int64(u))
					}
				case 3: // label
					var key, str uint64
					if err := walkFields(p, func(f uint64, w int, v uint64, p []byte) error {
						switch f {
						case 1:
							key = v
						case 2:
							str = v
						}
						return nil
					}); err != nil {
						return err
					}
					if key != 0 && str != 0 {
						if s.labels == nil {
							s.labels = make(map[uint64]uint64)
						}
						s.labels[key] = str
					}
				}
				return nil
			}); err != nil {
				return err
			}
			samples = append(samples, s)
		case 4: // location
			loc := location{}
			if err := walkFields(payload, func(f uint64, w int, v uint64, p []byte) error {
				switch f {
				case 1:
					loc.id = v
				case 4: // line
					var fnID uint64
					if err := walkFields(p, func(f uint64, w int, v uint64, p []byte) error {
						if f == 1 {
							fnID = v
						}
						return nil
					}); err != nil {
						return err
					}
					loc.funcs = append(loc.funcs, fnID)
				}
				return nil
			}); err != nil {
				return err
			}
			locs[loc.id] = loc
		case 5: // function
			var id, name uint64
			if err := walkFields(payload, func(f uint64, w int, v uint64, p []byte) error {
				switch f {
				case 1:
					id = v
				case 2:
					name = v
				}
				return nil
			}); err != nil {
				return err
			}
			funcNames[id] = name
		case 6: // string_table
			strTab = append(strTab, string(payload))
		case 10: // duration_nanos
			duration = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("profcost: %w", err)
	}

	str := func(i uint64) string {
		if i < uint64(len(strTab)) {
			return strTab[i]
		}
		return ""
	}
	// Pick the value index carrying CPU nanoseconds; fall back to the
	// last value column (the pprof convention for cpu profiles).
	cpuIdx := len(sampleType) - 1
	for i, st := range sampleType {
		if str(st[0]) == "cpu" && str(st[1]) == "nanoseconds" {
			cpuIdx = i
		}
	}
	p := &Profile{DurationNanos: duration}
	for _, s := range samples {
		if cpuIdx < 0 || cpuIdx >= len(s.values) {
			continue
		}
		out := Sample{CPUNanos: s.values[cpuIdx]}
		for _, lid := range s.locIDs {
			loc, ok := locs[lid]
			if !ok {
				continue
			}
			// A location's lines are innermost (inlined leaf) first.
			for _, fnID := range loc.funcs {
				if name := str(funcNames[fnID]); name != "" {
					out.Stack = append(out.Stack, name)
				}
			}
		}
		if len(s.labels) > 0 {
			out.Labels = make(map[string]string, len(s.labels))
			for k, v := range s.labels {
				out.Labels[str(k)] = str(v)
			}
		}
		p.Samples = append(p.Samples, out)
	}
	return p, nil
}

// walkFields iterates a protobuf message's fields. For varint fields
// the callback receives the value in v; for length-delimited fields the
// payload slice; fixed32/fixed64 are decoded into v.
func walkFields(b []byte, fn func(field uint64, wire int, v uint64, payload []byte) error) error {
	for len(b) > 0 {
		tag, n := uvarint(b)
		if n <= 0 {
			return fmt.Errorf("bad field tag")
		}
		b = b[n:]
		field, wire := tag>>3, int(tag&7)
		var v uint64
		var payload []byte
		switch wire {
		case 0: // varint
			v, n = uvarint(b)
			if n <= 0 {
				return fmt.Errorf("bad varint (field %d)", field)
			}
			b = b[n:]
		case 1: // fixed64
			if len(b) < 8 {
				return fmt.Errorf("short fixed64 (field %d)", field)
			}
			for i := 7; i >= 0; i-- {
				v = v<<8 | uint64(b[i])
			}
			b = b[8:]
		case 2: // length-delimited
			l, n := uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				return fmt.Errorf("short bytes (field %d)", field)
			}
			payload = b[n : n+int(l)]
			b = b[n+int(l):]
		case 5: // fixed32
			if len(b) < 4 {
				return fmt.Errorf("short fixed32 (field %d)", field)
			}
			for i := 3; i >= 0; i-- {
				v = v<<8 | uint64(b[i])
			}
			b = b[4:]
		default:
			return fmt.Errorf("unsupported wire type %d (field %d)", wire, field)
		}
		if err := fn(field, wire, v, payload); err != nil {
			return err
		}
	}
	return nil
}

// appendPackedUvarints appends a repeated uint64 field's values,
// accepting both packed (wire 2) and unpacked (wire 0) encodings.
func appendPackedUvarints(dst []uint64, wire int, v uint64, payload []byte) []uint64 {
	if wire == 0 {
		return append(dst, v)
	}
	for len(payload) > 0 {
		u, n := uvarint(payload)
		if n <= 0 {
			break
		}
		dst = append(dst, u)
		payload = payload[n:]
	}
	return dst
}

// uvarint decodes a base-128 varint, returning the value and the byte
// count (0 on truncation).
func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * uint(i))
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}
