package profcost

import (
	"bytes"
	"compress/gzip"
	"context"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// --- minimal protobuf test encoder ----------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendVarintField(b []byte, field, v uint64) []byte {
	b = appendUvarint(b, field<<3|0)
	return appendUvarint(b, v)
}

func appendBytesField(b []byte, field uint64, payload []byte) []byte {
	b = appendUvarint(b, field<<3|2)
	b = appendUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func appendPacked(b []byte, field uint64, vals ...uint64) []byte {
	var p []byte
	for _, v := range vals {
		p = appendUvarint(p, v)
	}
	return appendBytesField(b, field, p)
}

// buildProfile encodes a synthetic CPU profile:
//
//	strings: 1="cpu" 2="nanoseconds" 3..5=function names,
//	         6="experiment" 7="E1" 8="E2"
//	fast/slow both called under shared; one unlabeled fast sample.
func buildProfile(t *testing.T, gzipped bool) []byte {
	t.Helper()
	var msg []byte
	// string_table (field 6); index 0 must be "".
	for _, s := range []string{"", "cpu", "nanoseconds", "main.fast", "main.slow", "main.shared", "experiment", "E1", "E2"} {
		msg = appendBytesField(msg, 6, []byte(s))
	}
	// sample_type (field 1): ValueType{type: "cpu", unit: "nanoseconds"}.
	var vt []byte
	vt = appendVarintField(vt, 1, 1)
	vt = appendVarintField(vt, 2, 2)
	msg = appendBytesField(msg, 1, vt)
	// functions (field 5): id -> name index.
	for id, name := range map[uint64]uint64{1: 3, 2: 4, 3: 5} {
		var fn []byte
		fn = appendVarintField(fn, 1, id)
		fn = appendVarintField(fn, 2, name)
		msg = appendBytesField(msg, 5, fn)
	}
	// locations (field 4): one line each, function_id matching location id.
	for id := uint64(1); id <= 3; id++ {
		var line []byte
		line = appendVarintField(line, 1, id) // function_id
		var loc []byte
		loc = appendVarintField(loc, 1, id)
		loc = appendBytesField(loc, 4, line)
		msg = appendBytesField(msg, 4, loc)
	}
	// samples (field 2). Leaf-first stacks.
	sample := func(locIDs []uint64, ns uint64, labelVal uint64) []byte {
		var s []byte
		s = appendPacked(s, 1, locIDs...)
		s = appendPacked(s, 2, ns)
		if labelVal != 0 {
			var lb []byte
			lb = appendVarintField(lb, 1, 6) // key = "experiment"
			lb = appendVarintField(lb, 2, labelVal)
			s = appendBytesField(s, 3, lb)
		}
		return s
	}
	msg = appendBytesField(msg, 2, sample([]uint64{1, 3}, 100, 7)) // E1: fast <- shared
	msg = appendBytesField(msg, 2, sample([]uint64{2, 3}, 200, 8)) // E2: slow <- shared
	msg = appendBytesField(msg, 2, sample([]uint64{2, 3}, 150, 8)) // E2 again
	msg = appendBytesField(msg, 2, sample([]uint64{1}, 50, 0))     // unlabeled
	// duration_nanos (field 10).
	msg = appendVarintField(msg, 10, 1000)

	if !gzipped {
		return msg
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParseAndAttributeSynthetic(t *testing.T) {
	for _, gz := range []bool{false, true} {
		p, err := Parse(bytes.NewReader(buildProfile(t, gz)))
		if err != nil {
			t.Fatalf("gzipped=%v: %v", gz, err)
		}
		if p.DurationNanos != 1000 {
			t.Errorf("duration = %d, want 1000", p.DurationNanos)
		}
		if len(p.Samples) != 4 {
			t.Fatalf("samples = %d, want 4", len(p.Samples))
		}
		if got := p.Samples[0].Stack; len(got) != 2 || got[0] != "main.fast" || got[1] != "main.shared" {
			t.Errorf("sample 0 stack = %v", got)
		}
		if got := p.Samples[0].Labels["experiment"]; got != "E1" {
			t.Errorf("sample 0 label = %q, want E1", got)
		}

		reports := Attribute(p, "experiment")
		if len(reports) != 3 {
			t.Fatalf("reports = %d, want 3", len(reports))
		}
		// Sorted by total flat time: E2 (350) > E1 (100) > "" (50).
		if reports[0].Group != "E2" || reports[0].Total != 350 {
			t.Errorf("report 0 = %s/%v, want E2/350ns", reports[0].Group, reports[0].Total)
		}
		if reports[1].Group != "E1" || reports[1].Total != 100 {
			t.Errorf("report 1 = %s/%v, want E1/100ns", reports[1].Group, reports[1].Total)
		}
		if reports[2].Group != "" || reports[2].Total != 50 {
			t.Errorf("report 2 = %s/%v, want unattributed/50ns", reports[2].Group, reports[2].Total)
		}
		// E2: slow has all the flat time, shared only cumulative.
		e2 := reports[0]
		if e2.Funcs[0].Function != "main.slow" || e2.Funcs[0].Flat != 350 || e2.Funcs[0].Cum != 350 {
			t.Errorf("E2 top = %+v", e2.Funcs[0])
		}
		found := false
		for _, fc := range e2.Funcs {
			if fc.Function == "main.shared" {
				found = true
				if fc.Flat != 0 || fc.Cum != 350 {
					t.Errorf("shared = %+v, want flat 0 cum 350", fc)
				}
			}
		}
		if !found {
			t.Error("E2 report missing caller-only function main.shared")
		}
	}
}

func TestRenderTable(t *testing.T) {
	p, err := Parse(bytes.NewReader(buildProfile(t, true)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Render(&buf, Attribute(p, "experiment"), 1)
	out := buf.String()
	for _, want := range []string{
		"cpu cost: E2",
		"cpu cost: E1",
		"cpu cost: (unattributed)",
		"main.slow",
		"flat%",
		"more functions", // E2 has 2 funcs, top-1 truncates
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "cpu cost: E2") > strings.Index(out, "cpu cost: E1") {
		t.Errorf("groups not sorted by total:\n%s", out)
	}
}

// TestParseRealProfile round-trips an actual runtime CPU profile with a
// goroutine label, proving the decoder handles what Go really emits.
func TestParseRealProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile: %v", err)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	pprof.Do(context.Background(), pprof.Labels("experiment", "T1"), func(context.Context) {
		x := 0.0
		for time.Now().Before(deadline) {
			for i := 0; i < 1e5; i++ {
				x += float64(i) * 1.0000001
			}
		}
		_ = x
	})
	pprof.StopCPUProfile()

	p, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode real profile: %v", err)
	}
	if len(p.Samples) == 0 {
		t.Skip("no samples captured (machine too slow/fast for SIGPROF)")
	}
	labeled := false
	for _, s := range p.Samples {
		if len(s.Stack) == 0 {
			t.Errorf("sample with empty stack: %+v", s)
		}
		if s.Labels["experiment"] == "T1" {
			labeled = true
		}
	}
	if !labeled {
		t.Error("no sample carries the experiment=T1 label")
	}
	if r := Attribute(p, "experiment"); len(r) == 0 {
		t.Error("attribution produced no reports")
	}
}
