package vanatta

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestStateSetAlphabets(t *testing.T) {
	cases := []struct {
		set     StateSet
		size    int
		bits    int
		meanPow float64
		minDist float64
	}{
		{OOK(), 2, 1, 0.5, 1},
		{BPSK(), 2, 1, 1, 2},
		{QPSK(), 4, 2, 1, math.Sqrt2},
		{PSK8(), 8, 3, 1, 2 * math.Sin(math.Pi/8)},
		{QAM16(), 16, 4, 10.0 / 18.0, 2.0 / (3 * math.Sqrt2)},
	}
	for _, c := range cases {
		t.Run(c.set.Name(), func(t *testing.T) {
			if c.set.Size() != c.size {
				t.Fatalf("size %d, want %d", c.set.Size(), c.size)
			}
			if c.set.BitsPerSymbol() != c.bits {
				t.Fatalf("bits %d, want %d", c.set.BitsPerSymbol(), c.bits)
			}
			if p := c.set.MeanReflectedPower(); math.Abs(p-c.meanPow) > 1e-12 {
				t.Fatalf("mean power %g, want %g", p, c.meanPow)
			}
			if d := c.set.MinDistance(); math.Abs(d-c.minDist) > 1e-12 {
				t.Fatalf("min distance %g, want %g", d, c.minDist)
			}
		})
	}
}

func TestStatesArePassive(t *testing.T) {
	// A passive termination cannot amplify: every |Γ| <= 1.
	for _, s := range []StateSet{OOK(), BPSK(), QPSK(), PSK8(), QAM16()} {
		for i, g := range s.States() {
			if cmplx.Abs(g) > 1+1e-12 {
				t.Fatalf("%s state %d has |Γ| = %g > 1", s.Name(), i, cmplx.Abs(g))
			}
		}
	}
}

func TestQAM16GrayLabelling(t *testing.T) {
	// Adjacent constellation points (one grid step apart) must differ in
	// exactly one bit.
	s := QAM16()
	states := s.States()
	step := 2.0 / (3 * math.Sqrt2) // one grid level spacing after scaling
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			if math.Abs(cmplx.Abs(states[a]-states[b])-step) < 1e-9 {
				diff := a ^ b
				if bitsSet(diff) != 1 {
					t.Fatalf("neighbours %04b and %04b differ in %d bits", a, b, bitsSet(diff))
				}
			}
		}
	}
}

func TestPSK8GrayLabelling(t *testing.T) {
	// Phase-adjacent states (45° apart on the circle) differ in exactly
	// one bit.
	s := PSK8()
	states := s.States()
	step := 2 * math.Sin(math.Pi/8)
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			if math.Abs(cmplx.Abs(states[a]-states[b])-step) < 1e-9 {
				if bitsSet(a^b) != 1 {
					t.Fatalf("adjacent phases %03b and %03b differ in %d bits", a, b, bitsSet(a^b))
				}
			}
		}
	}
	// All unit magnitude.
	for i, g := range states {
		if math.Abs(cmplx.Abs(g)-1) > 1e-12 {
			t.Fatalf("state %d magnitude %g", i, cmplx.Abs(g))
		}
	}
}

func bitsSet(x int) int {
	n := 0
	for x != 0 {
		n += x & 1
		x >>= 1
	}
	return n
}

func TestStateSetGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	OOK().Gamma(2)
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ook", "bpsk", "qpsk", "8psk", "16qam"} {
		s, err := ByName(name)
		if err != nil || s.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, s.Name(), err)
		}
	}
	if _, err := ByName("64apsk"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestStatesReturnsCopy(t *testing.T) {
	s := QPSK()
	st := s.States()
	st[0] = 99
	if s.Gamma(0) == 99 {
		t.Fatal("States must return a copy")
	}
}

func TestModulatorValidation(t *testing.T) {
	if _, err := NewModulator(OOK(), 0, 1e6, 0); err == nil {
		t.Fatal("zero symbol rate must error")
	}
	if _, err := NewModulator(OOK(), 1e6, 1.5e6, 0); err == nil {
		t.Fatal("non-integer oversampling must error")
	}
	if _, err := NewModulator(OOK(), 1e6, 1e6, 0); err == nil {
		t.Fatal("1 sample/symbol must error")
	}
	if _, err := NewModulator(OOK(), 1e6, 8e6, -1); err == nil {
		t.Fatal("negative rise time must error")
	}
}

func TestModulatorIdealSwitch(t *testing.T) {
	m, err := NewModulator(BPSK(), 1e6, 8e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := m.Waveform(nil, []int{0, 1, 0})
	if len(w) != 24 {
		t.Fatalf("waveform length %d, want 24", len(w))
	}
	// With zero rise time every sample sits exactly on a state.
	for i, v := range w {
		want := complex128(1)
		if i >= 8 && i < 16 {
			want = -1
		}
		if cmplx.Abs(v-want) > 1e-12 {
			t.Fatalf("sample %d = %v, want %v", i, v, want)
		}
	}
}

func TestModulatorRiseTimeSettling(t *testing.T) {
	// 10 ns rise time, 1 Msym/s: settles easily. At 50 Msym/s it can't.
	slow, _ := NewModulator(BPSK(), 1e6, 16e6, 10e-9)
	fast, _ := NewModulator(BPSK(), 50e6, 800e6, 100e-9)
	if f := slow.SettledFraction(); f < 0.9 {
		t.Fatalf("slow symbol settled fraction %g, want ~1", f)
	}
	if f := fast.SettledFraction(); f > 0.5 {
		t.Fatalf("fast symbol settled fraction %g, should be small", f)
	}
	// Waveform end-of-symbol value approaches the target when settled.
	w := slow.Waveform(nil, []int{0, 1})
	if cmplx.Abs(w[len(w)-1]-(-1)) > 0.05 {
		t.Fatalf("end of symbol %v, want ~ -1", w[len(w)-1])
	}
}

func TestModulatorTrajectoryMonotone(t *testing.T) {
	// An RC transition from +1 to -1 must move monotonically.
	m, _ := NewModulator(BPSK(), 1e6, 32e6, 200e-9)
	w := m.Waveform(nil, []int{0, 1})
	prev := real(w[31])
	for i := 32; i < 64; i++ {
		if real(w[i]) > prev+1e-12 {
			t.Fatalf("transition not monotone at %d", i)
		}
		prev = real(w[i])
	}
}

func TestModulatorReset(t *testing.T) {
	m, _ := NewModulator(BPSK(), 1e6, 8e6, 100e-9)
	a := m.Waveform(nil, []int{1, 0, 1})
	m.Reset()
	b := m.Waveform(nil, []int{1, 0, 1})
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("Reset must restore initial state")
		}
	}
}

func TestMaxSymbolRate(t *testing.T) {
	if !math.IsInf(MaxSymbolRate(0), 1) {
		t.Fatal("zero rise time must allow unbounded rate")
	}
	// Faster switches allow higher rates, and the relation is inverse.
	r10 := MaxSymbolRate(10e-9)
	r20 := MaxSymbolRate(20e-9)
	if math.Abs(r10/r20-2) > 1e-9 {
		t.Fatalf("rate should be inverse in rise time: %g vs %g", r10, r20)
	}
	// A modulator running exactly at the max rate has settled fraction
	// ~0.5 by construction.
	rt := 5e-9
	rate := MaxSymbolRate(rt)
	// Round to an integer oversampling of 16.
	m, err := NewModulator(BPSK(), rate, rate*16, rt)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.SettledFraction(); math.Abs(f-0.5) > 0.1 {
		t.Fatalf("settled fraction at max rate %g, want ~0.5", f)
	}
}

func TestModulatorSettledProperty(t *testing.T) {
	// Property: halving the symbol rate can only improve settling.
	f := func(rtRaw uint8) bool {
		rt := float64(rtRaw%100+1) * 1e-9
		m1, err1 := NewModulator(QPSK(), 10e6, 160e6, rt)
		m2, err2 := NewModulator(QPSK(), 5e6, 160e6, rt)
		if err1 != nil || err2 != nil {
			return false
		}
		return m2.SettledFraction() >= m1.SettledFraction()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkModulatorWaveform(b *testing.B) {
	m, _ := NewModulator(QPSK(), 10e6, 160e6, 5e-9)
	symbols := make([]int, 256)
	for i := range symbols {
		symbols[i] = i % 4
	}
	buf := make([]complex128, 0, 256*16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.Waveform(buf[:0], symbols)
	}
}

// TestWaveformMatchesComplexStep pins the scalar I/Q relaxation in
// Waveform to the complex-arithmetic reference it replaced:
// cur += complex(alpha,0)*(target-cur), sample for sample, across
// every alphabet at a finite rise time. The scalar form drops the
// exact-zero cross terms of the complex product; this test is the
// bit-identity proof.
func TestWaveformMatchesComplexStep(t *testing.T) {
	for _, name := range []string{"ook", "bpsk", "qpsk", "8psk", "16qam"} {
		set, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewModulator(set, 10e6, 80e6, 3e-9)
		if err != nil {
			t.Fatal(err)
		}
		symbols := make([]int, 200)
		for i := range symbols {
			symbols[i] = (i * 7) % set.Size()
		}
		got := m.Waveform(nil, symbols)

		alpha := complex(m.alpha, 0)
		cur := set.Gamma(0)
		for i, s := range symbols {
			target := set.Gamma(s)
			for k := 0; k < m.sps; k++ {
				cur += alpha * (target - cur)
				if got[i*m.sps+k] != cur {
					t.Fatalf("%s: sample (%d,%d): got %v, reference %v", name, i, k, got[i*m.sps+k], cur)
				}
			}
		}
	}
}
