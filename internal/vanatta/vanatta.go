// Package vanatta models the passive retro-reflective antenna array at the
// heart of an mmTag node, together with the baseline reflectors the
// evaluation compares against.
//
// A Van Atta array cross-connects its antenna elements in mirror pairs
// with equal-length transmission lines. An incident wavefront picked up by
// element k is re-radiated by element N-1-k, which conjugates the aperture
// phase profile: the reflected beam leaves toward the direction of
// arrival. The tag therefore enjoys full array gain toward the AP at any
// incidence angle within the element field of view, without phase
// shifters or any powered beam steering — the property that makes mmWave
// backscatter feasible at all.
//
// Data modulation is applied by switching the termination seen by the
// trace network: the reflected wave is multiplied by a programmable
// reflection coefficient Γ. Sets of Γ states implement OOK, BPSK, QPSK
// and 16-QAM backscatter modulation (package modstate types).
//
// Angles are radians from array broadside. Gains are linear power ratios.
//
// DESIGN.md: section 1 (the tag antenna reconstruction) and section 3
// (module inventory).
package vanatta

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmtag/internal/antenna"
)

// Reflector is any passive structure that returns a monostatic echo. The
// evaluation compares the Van Atta array against simpler reflectors.
type Reflector interface {
	// MonostaticGain returns the per-pass linear gain of the reflector
	// toward a monostatic observer at angle theta: the echo power is
	// proportional to MonostaticGain(theta)^2 in the backscatter link
	// budget.
	MonostaticGain(theta float64) float64
	// Name identifies the reflector in experiment output.
	Name() string
}

// Array is an N-element Van Atta retro-reflective array built from
// identical elements on a uniform line. The zero value is unusable; use
// New.
type Array struct {
	element antenna.Element
	n       int
	spacing float64 // element spacing, wavelengths

	// insertionLoss is the one-pass linear power loss of the trace/switch
	// network (0 < insertionLoss <= 1).
	insertionLoss float64
}

// Config parameterizes a Van Atta array.
type Config struct {
	// Elements is the element count; must be even and >= 2 so elements
	// pair up across the array centre.
	Elements int
	// SpacingWavelengths is the element pitch; 0.5 if zero.
	SpacingWavelengths float64
	// Element is the per-element pattern; a 5 dBi patch if nil.
	Element antenna.Element
	// InsertionLossDB is the one-pass trace + switch network loss in dB
	// (>= 0); 1.5 dB is typical of a PCB implementation with one SPDT
	// switch in the path.
	InsertionLossDB float64
}

// New constructs a Van Atta array.
func New(cfg Config) (*Array, error) {
	if cfg.Elements < 2 || cfg.Elements%2 != 0 {
		return nil, fmt.Errorf("vanatta: element count must be even and >= 2, got %d", cfg.Elements)
	}
	if cfg.InsertionLossDB < 0 {
		return nil, fmt.Errorf("vanatta: insertion loss must be >= 0 dB, got %g", cfg.InsertionLossDB)
	}
	spacing := cfg.SpacingWavelengths
	if spacing == 0 {
		spacing = 0.5
	}
	if spacing < 0 {
		return nil, fmt.Errorf("vanatta: spacing must be positive, got %g", spacing)
	}
	el := cfg.Element
	if el == nil {
		el = antenna.NewPatch()
	}
	return &Array{
		element:       el,
		n:             cfg.Elements,
		spacing:       spacing,
		insertionLoss: math.Pow(10, -cfg.InsertionLossDB/10),
	}, nil
}

// N returns the element count.
func (a *Array) N() int { return a.n }

// Name implements Reflector.
func (a *Array) Name() string { return fmt.Sprintf("van-atta-%d", a.n) }

// BistaticAF returns the complex array factor for a wave arriving from
// thetaIn and observed at thetaOut, normalized so |AF| = 1 when all
// element contributions add coherently.
//
// Element k (position k*d) receives phase 2*pi*d*k*sin(thetaIn) and
// re-radiates from its partner at position (N-1-k)*d.
func (a *Array) BistaticAF(thetaIn, thetaOut float64) complex128 {
	var af complex128
	d := a.spacing
	for k := 0; k < a.n; k++ {
		phase := 2 * math.Pi * d * (float64(k)*math.Sin(thetaIn) + float64(a.n-1-k)*math.Sin(thetaOut))
		af += cmplx.Exp(complex(0, phase))
	}
	return af / complex(float64(a.n), 0)
}

// MonostaticGain returns the per-pass linear gain toward a monostatic
// observer at theta. Because the Van Atta re-radiated beam tracks the
// arrival direction, the array factor is fully coherent at every theta;
// only the element pattern and the network insertion loss (amortized as a
// half-loss per pass so the two-pass budget sees it once) shape the
// response.
func (a *Array) MonostaticGain(theta float64) float64 {
	af := a.BistaticAF(theta, theta)
	afPow := real(af)*real(af) + imag(af)*imag(af)
	return a.element.Gain(theta) * float64(a.n) * afPow * math.Sqrt(a.insertionLoss)
}

// BistaticGain returns the linear gain for energy arriving from thetaIn
// and leaving toward thetaOut, the quantity that determines how much a
// neighbouring AP beam direction hears of the tag's reflection (spatial
// isolation for SDM).
func (a *Array) BistaticGain(thetaIn, thetaOut float64) float64 {
	af := a.BistaticAF(thetaIn, thetaOut)
	afPow := real(af)*real(af) + imag(af)*imag(af)
	g := math.Sqrt(a.element.Gain(thetaIn) * a.element.Gain(thetaOut))
	return g * float64(a.n) * afPow * math.Sqrt(a.insertionLoss)
}

// RCS returns the monostatic radar cross-section (m^2) of the array at
// theta for wavelength lambda (m), for radar-equation budgets:
//
//	sigma = G(theta)^2 * lambda^2 / (4 pi)
func (a *Array) RCS(theta, lambda float64) float64 {
	g := a.MonostaticGain(theta)
	return g * g * lambda * lambda / (4 * math.Pi)
}

// FieldOfView returns the half-angle (radians) within which the
// monostatic gain stays within 3 dB of broadside.
func (a *Array) FieldOfView() float64 {
	peak := a.MonostaticGain(0)
	for th := 0.0; th < math.Pi/2; th += 0.001 {
		if a.MonostaticGain(th) < peak/2 {
			return th
		}
	}
	return math.Pi / 2
}

// FlatPlate models the baseline a Van Atta is compared against: a static
// array (or metal plate) of the same aperture whose re-radiated beam
// stays at the specular direction. Its monostatic echo collapses as soon
// as the observer leaves broadside.
type FlatPlate struct {
	element antenna.Element
	n       int
	spacing float64
}

// NewFlatPlate returns an n-element static reflector with the given
// element pattern and spacing in wavelengths.
func NewFlatPlate(element antenna.Element, n int, spacingWavelengths float64) (*FlatPlate, error) {
	if n < 1 {
		return nil, fmt.Errorf("vanatta: flat plate needs >= 1 element, got %d", n)
	}
	if spacingWavelengths <= 0 {
		return nil, fmt.Errorf("vanatta: flat plate spacing must be positive, got %g", spacingWavelengths)
	}
	if element == nil {
		element = antenna.NewPatch()
	}
	return &FlatPlate{element: element, n: n, spacing: spacingWavelengths}, nil
}

// Name implements Reflector.
func (p *FlatPlate) Name() string { return fmt.Sprintf("flat-plate-%d", p.n) }

// MonostaticGain returns the per-pass gain toward a monostatic observer:
// each element re-radiates with the phase it received, so the round-trip
// aperture phase slope doubles and the pattern narrows to half the usual
// width around broadside.
func (p *FlatPlate) MonostaticGain(theta float64) float64 {
	// Sum of exp(j * 2 * 2*pi*d*k*sin(theta)): the doubled phase slope.
	var af complex128
	for k := 0; k < p.n; k++ {
		phase := 2 * math.Pi * p.spacing * 2 * float64(k) * math.Sin(theta)
		af += cmplx.Exp(complex(0, phase))
	}
	afPow := (real(af)*real(af) + imag(af)*imag(af)) / float64(p.n*p.n)
	return p.element.Gain(theta) * float64(p.n) * afPow
}

// SingleAntenna is the minimal baseline: one element with no array gain.
type SingleAntenna struct {
	element antenna.Element
}

// NewSingleAntenna returns a one-element reflector (a conventional
// low-frequency backscatter tag antenna).
func NewSingleAntenna(element antenna.Element) *SingleAntenna {
	if element == nil {
		element = antenna.NewPatch()
	}
	return &SingleAntenna{element: element}
}

// Name implements Reflector.
func (s *SingleAntenna) Name() string { return "single-antenna" }

// MonostaticGain returns the element gain alone.
func (s *SingleAntenna) MonostaticGain(theta float64) float64 {
	return s.element.Gain(theta)
}
