package vanatta

import (
	"math"
	"testing"
	"testing/quick"

	"mmtag/internal/antenna"
)

func mustArray(t *testing.T, n int) *Array {
	t.Helper()
	a, err := New(Config{Elements: n})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Elements: 0},
		{Elements: 3},                      // odd
		{Elements: 8, InsertionLossDB: -1}, // negative loss
		{Elements: 8, SpacingWavelengths: -0.5},
	}
	for _, c := range cases {
		if _, err := New(c); err == nil {
			t.Fatalf("config %+v must error", c)
		}
	}
	if _, err := New(Config{Elements: 8}); err != nil {
		t.Fatalf("valid config errored: %v", err)
	}
}

func TestRetroReflectionIsAngleFlat(t *testing.T) {
	// The defining Van Atta property: monostatic array factor stays fully
	// coherent at every angle, so gain varies only with the element
	// pattern — nearly flat over ±50°, unlike any static reflector.
	a, err := New(Config{Elements: 8, Element: antenna.Isotropic{}})
	if err != nil {
		t.Fatal(err)
	}
	g0 := a.MonostaticGain(0)
	for th := -1.0; th <= 1.0; th += 0.05 {
		g := a.MonostaticGain(th)
		if math.Abs(g-g0) > 1e-9 {
			t.Fatalf("isotropic-element retro gain varies with angle: %g at %g vs %g", g, th, g0)
		}
	}
}

func TestRetroGainScalesWithN(t *testing.T) {
	// Per-pass gain grows linearly with N (echo power as N^2).
	a4 := mustArray(t, 4)
	a8 := mustArray(t, 8)
	a16 := mustArray(t, 16)
	r1 := a8.MonostaticGain(0) / a4.MonostaticGain(0)
	r2 := a16.MonostaticGain(0) / a8.MonostaticGain(0)
	if math.Abs(r1-2) > 1e-9 || math.Abs(r2-2) > 1e-9 {
		t.Fatalf("gain ratios %g, %g, want 2, 2", r1, r2)
	}
}

func TestInsertionLossHalvesPerPass(t *testing.T) {
	ideal, _ := New(Config{Elements: 8, InsertionLossDB: 0})
	lossy, _ := New(Config{Elements: 8, InsertionLossDB: 3})
	// Per-pass gain carries sqrt of the loss so the two-pass budget sees
	// the full 3 dB.
	ratio := 10 * math.Log10(ideal.MonostaticGain(0)/lossy.MonostaticGain(0))
	if math.Abs(ratio-1.5) > 1e-9 {
		t.Fatalf("per-pass loss %g dB, want 1.5", ratio)
	}
}

func TestBistaticAFPeaksAtRetroDirection(t *testing.T) {
	a := mustArray(t, 8)
	in := antenna.Deg(25)
	// At the retro direction the array factor is fully coherent: |AF| = 1.
	afPeak := a.BistaticAF(in, in)
	if m := math.Hypot(real(afPeak), imag(afPeak)); math.Abs(m-1) > 1e-9 {
		t.Fatalf("retro-direction |AF| = %g, want 1", m)
	}
	// Any other observation angle gets less.
	for th := -1.2; th <= 1.2; th += 0.01 {
		if math.Abs(th-in) < 0.05 {
			continue
		}
		af := a.BistaticAF(in, th)
		if m := math.Hypot(real(af), imag(af)); m > 0.95 {
			t.Fatalf("bistatic |AF| %g at %g rivals retro direction", m, th)
		}
	}
}

func TestBistaticReciprocity(t *testing.T) {
	a := mustArray(t, 8)
	f := func(x, y float64) bool {
		in := math.Mod(x, 1.0)
		out := math.Mod(y, 1.0)
		g1 := a.BistaticGain(in, out)
		g2 := a.BistaticGain(out, in)
		return math.Abs(g1-g2) < 1e-9*(g1+g2+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldOfViewPatchElements(t *testing.T) {
	// With cos^2 patch elements the per-pass 3 dB field of view is at
	// cos^2 θ = 0.5 → θ = 45°.
	a := mustArray(t, 8)
	fov := antenna.ToDeg(a.FieldOfView())
	if fov < 43 || fov > 47 {
		t.Fatalf("field of view %g°, want ~45°", fov)
	}
}

func TestFlatPlateCollapsesOffBroadside(t *testing.T) {
	a, _ := New(Config{Elements: 8, Element: antenna.Isotropic{}})
	p, err := NewFlatPlate(antenna.Isotropic{}, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Equal at broadside.
	if math.Abs(a.MonostaticGain(0)-p.MonostaticGain(0)) > 1e-9 {
		t.Fatal("van atta and flat plate must match at broadside")
	}
	// At 20° the flat plate is down by >10 dB while the Van Atta holds.
	th := antenna.Deg(20)
	vaDrop := 10 * math.Log10(a.MonostaticGain(0)/a.MonostaticGain(th))
	fpDrop := 10 * math.Log10(p.MonostaticGain(0)/p.MonostaticGain(th))
	if vaDrop > 0.5 {
		t.Fatalf("van atta dropped %g dB at 20°", vaDrop)
	}
	if fpDrop < 10 {
		t.Fatalf("flat plate only dropped %g dB at 20°", fpDrop)
	}
}

func TestFlatPlateValidation(t *testing.T) {
	if _, err := NewFlatPlate(nil, 0, 0.5); err == nil {
		t.Fatal("zero elements must error")
	}
	if _, err := NewFlatPlate(nil, 4, 0); err == nil {
		t.Fatal("zero spacing must error")
	}
	p, err := NewFlatPlate(nil, 4, 0.5)
	if err != nil || p.Name() != "flat-plate-4" {
		t.Fatalf("default element construction failed: %v", err)
	}
}

func TestSingleAntennaBaseline(t *testing.T) {
	s := NewSingleAntenna(antenna.Isotropic{})
	if s.MonostaticGain(0.7) != 1 {
		t.Fatal("isotropic single antenna gain must be 1")
	}
	if NewSingleAntenna(nil).MonostaticGain(0) <= 1 {
		t.Fatal("default patch element must have gain > 1 at boresight")
	}
	if s.Name() != "single-antenna" {
		t.Fatal("name")
	}
}

func TestRCSConsistency(t *testing.T) {
	a := mustArray(t, 8)
	lambda := 0.0125 // ~24 GHz
	g := a.MonostaticGain(0)
	want := g * g * lambda * lambda / (4 * math.Pi)
	if rcs := a.RCS(0, lambda); math.Abs(rcs-want) > 1e-15 {
		t.Fatalf("RCS %g, want %g", rcs, want)
	}
}

func TestReflectorInterfaceSatisfied(t *testing.T) {
	var _ Reflector = mustArray(t, 4)
	fp, _ := NewFlatPlate(nil, 4, 0.5)
	var _ Reflector = fp
	var _ Reflector = NewSingleAntenna(nil)
	if mustArray(t, 4).Name() != "van-atta-4" {
		t.Fatal("array name")
	}
}
