package vanatta

import (
	"fmt"
	"math"
	"math/cmplx"
)

// StateSet is a backscatter modulation alphabet: the set of termination
// reflection coefficients Γ the tag's switch network can present, together
// with the bit labelling. The reflected baseband symbol is the incident
// carrier multiplied by Γ.
type StateSet struct {
	name   string
	states []complex128 // Γ per symbol index
	bits   int          // bits per symbol
}

// Name returns the modulation name ("ook", "bpsk", ...).
func (s StateSet) Name() string { return s.name }

// BitsPerSymbol returns the number of bits one state encodes.
func (s StateSet) BitsPerSymbol() int { return s.bits }

// Size returns the alphabet size.
func (s StateSet) Size() int { return len(s.states) }

// Gamma returns the reflection coefficient for symbol index i.
// It panics when i is out of range: symbol indices come from the bit
// mapper and an invalid one is a programming error.
func (s StateSet) Gamma(i int) complex128 {
	if i < 0 || i >= len(s.states) {
		panic(fmt.Sprintf("vanatta: symbol index %d out of range [0,%d)", i, len(s.states)))
	}
	return s.states[i]
}

// States returns a copy of the Γ alphabet.
func (s StateSet) States() []complex128 {
	out := make([]complex128, len(s.states))
	copy(out, s.states)
	return out
}

// MeanReflectedPower returns the average |Γ|^2 over the alphabet: the
// backscatter modulation efficiency factor that enters the link budget
// (equiprobable symbols).
func (s StateSet) MeanReflectedPower() float64 {
	if len(s.states) == 0 {
		return 0
	}
	sum := 0.0
	for _, g := range s.states {
		sum += real(g)*real(g) + imag(g)*imag(g)
	}
	return sum / float64(len(s.states))
}

// MinDistance returns the minimum Euclidean distance between distinct Γ
// states, the first-order predictor of symbol error behaviour.
func (s StateSet) MinDistance() float64 {
	min := math.Inf(1)
	for i := range s.states {
		for j := i + 1; j < len(s.states); j++ {
			if d := cmplx.Abs(s.states[i] - s.states[j]); d < min {
				min = d
			}
		}
	}
	return min
}

// OOK returns the on-off-keying alphabet: absorb (matched termination,
// Γ=0) or reflect (short circuit, Γ=1). Index order: bit 0 -> absorb,
// bit 1 -> reflect.
func OOK() StateSet {
	return StateSet{name: "ook", states: []complex128{0, 1}, bits: 1}
}

// BPSK returns the binary phase-shift alphabet implemented by switching
// between two delay lines λ/2 apart: Γ ∈ {+1, −1}.
func BPSK() StateSet {
	return StateSet{name: "bpsk", states: []complex128{1, -1}, bits: 1}
}

// QPSK returns the quadrature alphabet from four delay lines λ/4 apart,
// Gray-labelled so adjacent states differ in one bit:
// 00 -> 1, 01 -> j, 11 -> −1, 10 -> −j.
func QPSK() StateSet {
	return StateSet{name: "qpsk", states: []complex128{1, 1i, -1i, -1}, bits: 2}
}

// PSK8 returns the eight-phase alphabet from eight delay lines λ/8
// apart, Gray-labelled so adjacent phases differ in one bit.
func PSK8() StateSet {
	// Gray sequence of 3-bit values around the circle.
	gray := []int{0, 1, 3, 2, 6, 7, 5, 4}
	states := make([]complex128, 8)
	for pos, g := range gray {
		phi := 2 * math.Pi * float64(pos) / 8
		states[g] = cmplx.Exp(complex(0, phi))
	}
	return StateSet{name: "8psk", states: states, bits: 3}
}

// QAM16 returns a 16-state alphabet combining four phases with four
// amplitude levels (multi-level loads), normalized so the largest |Γ| is
// 1. Labelling is Gray per axis.
func QAM16() StateSet {
	// Standard 16-QAM grid at levels {-3,-1,1,3}, scaled so the corner
	// states sit at |Γ| = 1 (passive constraint). The real part is
	// selected by the low two bits, the imaginary part by the high two,
	// both Gray mapped.
	levels := []float64{-3, -1, 1, 3}
	states := make([]complex128, 16)
	scale := 1 / (3 * math.Sqrt2) // corner magnitude 3*sqrt(2) -> 1
	for b := 0; b < 16; b++ {
		iBits := b & 3
		qBits := b >> 2
		states[b] = complex(levels[grayIndex(iBits)]*scale, levels[grayIndex(qBits)]*scale)
	}
	return StateSet{name: "16qam", states: states, bits: 4}
}

// grayIndex maps a 2-bit Gray code to its level index.
func grayIndex(g int) int {
	switch g {
	case 0:
		return 0
	case 1:
		return 1
	case 3:
		return 2
	case 2:
		return 3
	}
	panic("vanatta: invalid 2-bit gray code")
}

// ByName returns the StateSet for a modulation name.
func ByName(name string) (StateSet, error) {
	switch name {
	case "ook":
		return OOK(), nil
	case "bpsk":
		return BPSK(), nil
	case "qpsk":
		return QPSK(), nil
	case "8psk":
		return PSK8(), nil
	case "16qam":
		return QAM16(), nil
	}
	return StateSet{}, fmt.Errorf("vanatta: unknown modulation %q", name)
}

// Modulator converts a symbol-index stream into the tag's time-domain
// reflection coefficient Γ(t), including the finite rise time of the RF
// switches. Transitions follow a first-order (RC) trajectory between
// states, which is what bounds the usable symbol rate.
type Modulator struct {
	set        StateSet
	riseTime   float64 // 10-90% switch rise time, seconds
	sampleRate float64 // waveform sample rate, Hz
	symbolRate float64 // symbols per second

	sps   int     // samples per symbol
	alpha float64 // per-sample RC step factor
	cur   complex128
}

// NewModulator builds a waveform modulator. sampleRate must be an integer
// multiple of symbolRate with at least 2 samples per symbol.
func NewModulator(set StateSet, symbolRate, sampleRate, riseTime float64) (*Modulator, error) {
	if symbolRate <= 0 || sampleRate <= 0 {
		return nil, fmt.Errorf("vanatta: rates must be positive")
	}
	ratio := sampleRate / symbolRate
	sps := int(ratio + 0.5)
	if math.Abs(ratio-float64(sps)) > 1e-9 || sps < 2 {
		return nil, fmt.Errorf("vanatta: sample rate must be an integer multiple (>=2) of symbol rate, got ratio %g", ratio)
	}
	if riseTime < 0 {
		return nil, fmt.Errorf("vanatta: rise time must be >= 0, got %g", riseTime)
	}
	m := &Modulator{
		set:        set,
		riseTime:   riseTime,
		sampleRate: sampleRate,
		symbolRate: symbolRate,
		sps:        sps,
	}
	if riseTime == 0 {
		m.alpha = 1
	} else {
		// 10-90% rise time of a first-order system: tr = ln(9) * tau.
		tau := riseTime / math.Log(9)
		m.alpha = 1 - math.Exp(-1/(sampleRate*tau))
	}
	// Start settled at the first state so a leading constant symbol run
	// has no artificial edge.
	if set.Size() > 0 {
		m.cur = set.Gamma(0)
	}
	return m, nil
}

// SamplesPerSymbol returns the oversampling factor.
func (m *Modulator) SamplesPerSymbol() int { return m.sps }

// Reset re-settles the modulator at symbol 0's state.
func (m *Modulator) Reset() { m.cur = m.set.Gamma(0) }

// Waveform appends the Γ(t) samples for the symbol-index stream to dst
// and returns it. Each symbol occupies SamplesPerSymbol samples; the
// trajectory relaxes exponentially toward the target state.
func (m *Modulator) Waveform(dst []complex128, symbols []int) []complex128 {
	// Pre-grow once: the append-growth copies otherwise dominate long
	// waveform generation.
	if need := len(dst) + len(symbols)*m.sps; cap(dst) < need {
		grown := make([]complex128, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	// The RC step is a real scalar, so the relaxation separates into
	// independent I/Q recurrences — half the multiplies of the complex
	// product cur += complex(alpha,0)*(target-cur), with bit-identical
	// results (the dropped terms are exact-zero products; see
	// TestWaveformMatchesComplexStep).
	a := m.alpha
	cr, ci := real(m.cur), imag(m.cur)
	for _, s := range symbols {
		t := m.set.Gamma(s)
		tr, ti := real(t), imag(t)
		for i := 0; i < m.sps; i++ {
			cr += a * (tr - cr)
			ci += a * (ti - ci)
			dst = append(dst, complex(cr, ci))
		}
	}
	m.cur = complex(cr, ci)
	return dst
}

// SettledFraction returns the fraction of each symbol period by which a
// transition has settled to within 5% of its target, a scalar proxy for
// inter-symbol interference: below ~0.5 the constellation collapses.
func (m *Modulator) SettledFraction() float64 {
	if m.alpha >= 1 {
		return 1
	}
	// Samples needed for (1-alpha)^k < 0.05.
	k := math.Log(0.05) / math.Log(1-m.alpha)
	frac := 1 - k/float64(m.sps)
	if frac < 0 {
		return 0
	}
	return frac
}

// MaxSymbolRate returns the highest symbol rate (Hz) at which a switch
// with the given rise time still settles to within 5% inside half a
// symbol period — the design rule the reconstruction uses for the
// "switch-limited data rate" experiments.
func MaxSymbolRate(riseTime float64) float64 {
	if riseTime <= 0 {
		return math.Inf(1)
	}
	tau := riseTime / math.Log(9)
	settle := -math.Log(0.05) * tau // time to reach 5%
	return 0.5 / settle
}
