package fec

import (
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBits(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(2))
	}
	return b
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 = %#04x, want 0x29B1", got)
	}
	if got := CRC16(nil); got != 0xFFFF {
		t.Fatalf("CRC16(empty) = %#04x, want 0xFFFF", got)
	}
}

func TestCRC8KnownVector(t *testing.T) {
	// CRC-8 (poly 0x07) of "123456789" is 0xF4.
	if got := CRC8([]byte("123456789")); got != 0xF4 {
		t.Fatalf("CRC8 = %#02x, want 0xF4", got)
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	f := func(data []byte) bool {
		return CRC32IEEE(data) == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64)
	rng.Read(data)
	orig := CRC16(data)
	// Any single-bit flip changes the checksum.
	for byteIdx := 0; byteIdx < len(data); byteIdx += 7 {
		for bit := 0; bit < 8; bit++ {
			data[byteIdx] ^= 1 << bit
			if CRC16(data) == orig {
				t.Fatalf("flip at %d.%d undetected", byteIdx, bit)
			}
			data[byteIdx] ^= 1 << bit
		}
	}
}

func TestHammingRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 * (int(nRaw)%32 + 1)
		data := randomBits(rng, n)
		code, err := HammingEncode(nil, data)
		if err != nil {
			return false
		}
		if len(code) != n/4*7 {
			return false
		}
		decoded, corrected, err := HammingDecode(nil, code)
		if err != nil || corrected != 0 {
			return false
		}
		for i := range data {
			if decoded[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingCorrectsAnySingleError(t *testing.T) {
	data := []byte{1, 0, 1, 1}
	code, _ := HammingEncode(nil, data)
	for pos := 0; pos < 7; pos++ {
		corrupted := append([]byte{}, code...)
		corrupted[pos] ^= 1
		decoded, corrected, err := HammingDecode(nil, corrupted)
		if err != nil {
			t.Fatal(err)
		}
		if corrected != 1 {
			t.Fatalf("flip at %d: corrected = %d, want 1", pos, corrected)
		}
		for i := range data {
			if decoded[i] != data[i] {
				t.Fatalf("flip at %d not corrected", pos)
			}
		}
	}
}

func TestHammingErrors(t *testing.T) {
	if _, err := HammingEncode(nil, make([]byte, 5)); err == nil {
		t.Fatal("non-multiple-of-4 must error")
	}
	if _, _, err := HammingDecode(nil, make([]byte, 6)); err == nil {
		t.Fatal("non-multiple-of-7 must error")
	}
}

func TestConvEncodeLength(t *testing.T) {
	data := randomBits(rand.New(rand.NewSource(2)), 100)
	code := ConvEncode(nil, data)
	if len(code) != 2*(100+ConvTailBits()) {
		t.Fatalf("coded length %d, want %d", len(code), 2*(100+6))
	}
	if ConvRate() != 0.5 {
		t.Fatal("rate")
	}
}

func TestConvViterbiCleanRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		data := randomBits(rng, n)
		code := ConvEncode(nil, data)
		decoded, err := ViterbiDecode(code)
		if err != nil || len(decoded) != n {
			return false
		}
		for i := range data {
			if decoded[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestViterbiCorrectsScatteredErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randomBits(rng, 200)
	code := ConvEncode(nil, data)
	// Flip 5% of coded bits, well separated (the K=7 code corrects
	// isolated errors comfortably at this density).
	for i := 10; i < len(code); i += 40 {
		code[i] ^= 1
	}
	decoded, err := ViterbiDecode(code)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if decoded[i] != data[i] {
			t.Fatalf("scattered errors not corrected (bit %d)", i)
		}
	}
}

func TestViterbiSoftBeatsHard(t *testing.T) {
	// At a fixed channel quality, soft decisions must produce no more
	// errors than hard decisions (aggregated over trials).
	rng := rand.New(rand.NewSource(4))
	hardErrs, softErrs := 0, 0
	for trial := 0; trial < 30; trial++ {
		data := randomBits(rng, 150)
		code := ConvEncode(nil, data)
		soft := make([]float64, len(code))
		hard := make([]byte, len(code))
		for i, b := range code {
			level := float64(b) + rng.NormFloat64()*0.45
			soft[i] = level
			if level > 0.5 {
				hard[i] = 1
			}
		}
		hd, err := ViterbiDecode(hard)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := ViterbiDecodeSoft(soft)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if hd[i] != data[i] {
				hardErrs++
			}
			if sd[i] != data[i] {
				softErrs++
			}
		}
	}
	if hardErrs == 0 {
		t.Skip("channel too clean to compare") // should not happen at sigma 0.45
	}
	if softErrs > hardErrs {
		t.Fatalf("soft decoding (%d errors) worse than hard (%d)", softErrs, hardErrs)
	}
}

func TestViterbiErrors(t *testing.T) {
	if _, err := ViterbiDecode(make([]byte, 3)); err == nil {
		t.Fatal("odd length must error")
	}
	if _, err := ViterbiDecode(make([]byte, 4)); err == nil {
		t.Fatal("too-short stream must error")
	}
	if _, err := ViterbiDecodeSoft(make([]float64, 3)); err == nil {
		t.Fatal("odd soft length must error")
	}
}

func TestInterleaverRoundTrip(t *testing.T) {
	il, err := NewBlockInterleaver(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := randomBits(rng, il.BlockSize()*3)
		inter, err := il.Interleave(nil, data)
		if err != nil {
			return false
		}
		back, err := il.Deinterleave(nil, inter)
		if err != nil {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaverSpreadsBursts(t *testing.T) {
	il, _ := NewBlockInterleaver(8, 16)
	data := make([]byte, il.BlockSize())
	inter, _ := il.Interleave(nil, data)
	// Corrupt a burst of 8 consecutive interleaved bits.
	for i := 40; i < 48; i++ {
		inter[i] ^= 1
	}
	back, _ := il.Deinterleave(nil, inter)
	// After deinterleaving the errors must be spread: no two adjacent.
	for i := 1; i < len(back); i++ {
		if back[i] != 0 && back[i-1] != 0 {
			t.Fatal("burst not dispersed by interleaver")
		}
	}
}

func TestInterleaverErrors(t *testing.T) {
	if _, err := NewBlockInterleaver(0, 5); err == nil {
		t.Fatal("zero rows must error")
	}
	il, _ := NewBlockInterleaver(4, 4)
	if _, err := il.Interleave(nil, make([]byte, 5)); err == nil {
		t.Fatal("non-multiple length must error")
	}
	if _, err := il.Deinterleave(nil, make([]byte, 5)); err == nil {
		t.Fatal("non-multiple length must error")
	}
}

func TestScramblerRoundTripAndWhitening(t *testing.T) {
	s, err := NewScrambler(0x5D)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero input comes out ~half ones (whitened).
	zeros := make([]byte, 1000)
	scrambled := s.Apply(nil, zeros)
	ones := 0
	for _, b := range scrambled {
		ones += int(b)
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("scrambled ones density %d/1000, want ~500", ones)
	}
	// Descramble restores.
	s.Reset()
	back := s.Apply(nil, scrambled)
	for i, b := range back {
		if b != 0 {
			t.Fatalf("descramble failed at %d", i)
		}
	}
}

func TestScramblerSeedValidation(t *testing.T) {
	if _, err := NewScrambler(0); err == nil {
		t.Fatal("zero seed must error")
	}
	if _, err := NewScrambler(0x80); err == nil {
		t.Fatal("seed with only bit 7 set masks to zero and must error")
	}
}

func BenchmarkViterbiDecode256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := randomBits(rng, 256)
	code := ConvEncode(nil, data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ViterbiDecode(code); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvEncode256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := randomBits(rng, 256)
	dst := make([]byte, 0, 2*(256+6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = ConvEncode(dst[:0], data)
	}
}
