package fec

import "fmt"

// BlockInterleaver permutes bits by writing row-wise into a rows×cols
// matrix and reading column-wise, spreading burst errors across
// codewords so the Viterbi decoder sees them as isolated errors.
type BlockInterleaver struct {
	rows, cols int
}

// NewBlockInterleaver creates an interleaver over blocks of rows*cols
// bits.
func NewBlockInterleaver(rows, cols int) (*BlockInterleaver, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("fec: interleaver dimensions must be positive, got %dx%d", rows, cols)
	}
	return &BlockInterleaver{rows: rows, cols: cols}, nil
}

// BlockSize returns rows*cols.
func (b *BlockInterleaver) BlockSize() int { return b.rows * b.cols }

// Interleave permutes data, whose length must be a multiple of
// BlockSize, appending to dst.
func (b *BlockInterleaver) Interleave(dst, data []byte) ([]byte, error) {
	n := b.BlockSize()
	if len(data)%n != 0 {
		return nil, fmt.Errorf("fec: data length %d not a multiple of block size %d", len(data), n)
	}
	for blk := 0; blk < len(data); blk += n {
		for c := 0; c < b.cols; c++ {
			for r := 0; r < b.rows; r++ {
				dst = append(dst, data[blk+r*b.cols+c])
			}
		}
	}
	return dst, nil
}

// Deinterleave inverts Interleave.
func (b *BlockInterleaver) Deinterleave(dst, data []byte) ([]byte, error) {
	n := b.BlockSize()
	if len(data)%n != 0 {
		return nil, fmt.Errorf("fec: data length %d not a multiple of block size %d", len(data), n)
	}
	for blk := 0; blk < len(data); blk += n {
		out := make([]byte, n)
		i := 0
		for c := 0; c < b.cols; c++ {
			for r := 0; r < b.rows; r++ {
				out[r*b.cols+c] = data[blk+i]
				i++
			}
		}
		dst = append(dst, out...)
	}
	return dst, nil
}

// DeinterleaveSoft inverts Interleave for soft-decision levels, so a
// receiver can carry per-bit confidence through to the Viterbi decoder.
func (b *BlockInterleaver) DeinterleaveSoft(dst, data []float64) ([]float64, error) {
	n := b.BlockSize()
	if len(data)%n != 0 {
		return nil, fmt.Errorf("fec: data length %d not a multiple of block size %d", len(data), n)
	}
	for blk := 0; blk < len(data); blk += n {
		out := make([]float64, n)
		i := 0
		for c := 0; c < b.cols; c++ {
			for r := 0; r < b.rows; r++ {
				out[r*b.cols+c] = data[blk+i]
				i++
			}
		}
		dst = append(dst, out...)
	}
	return dst, nil
}

// Scrambler is the multiplicative LFSR scrambler (x^7 + x^4 + 1, the
// 802.11 polynomial) that whitens payload bits so the tag's switching
// waveform has no long constant runs (which would collide with the AP's
// DC-notch filtering).
type Scrambler struct {
	state byte // 7-bit LFSR state
	seed  byte
}

// NewScrambler creates a scrambler with a nonzero 7-bit seed.
func NewScrambler(seed byte) (*Scrambler, error) {
	seed &= 0x7F
	if seed == 0 {
		return nil, fmt.Errorf("fec: scrambler seed must be nonzero")
	}
	return &Scrambler{state: seed, seed: seed}, nil
}

// Reset restores the seed state.
func (s *Scrambler) Reset() { s.state = s.seed }

// Apply XORs the LFSR sequence into bits, appending to dst. Scrambling
// and descrambling are the same operation (run Reset between them).
func (s *Scrambler) Apply(dst, bits []byte) []byte {
	for _, b := range bits {
		// Feedback: x^7 + x^4 + 1 -> new bit = s6 ^ s3.
		fb := ((s.state >> 6) ^ (s.state >> 3)) & 1
		s.state = (s.state<<1 | fb) & 0x7F
		dst = append(dst, (b&1)^fb)
	}
	return dst
}
