package fec

import "fmt"

// Hamming(7,4): encodes 4 data bits into 7, correcting any single bit
// error per codeword. Used for the frame header, which must survive
// without the latency of the convolutional decoder.
//
// Codeword layout (1-indexed positions): p1 p2 d1 p3 d2 d3 d4, with
// parity bits at the power-of-two positions.

// HammingEncode expands data bits (0/1 values, length divisible by 4)
// into 7-bit codewords, appending to dst.
func HammingEncode(dst, data []byte) ([]byte, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("fec: hamming data length must be a multiple of 4, got %d", len(data))
	}
	for i := 0; i < len(data); i += 4 {
		d1, d2, d3, d4 := data[i]&1, data[i+1]&1, data[i+2]&1, data[i+3]&1
		p1 := d1 ^ d2 ^ d4
		p2 := d1 ^ d3 ^ d4
		p3 := d2 ^ d3 ^ d4
		dst = append(dst, p1, p2, d1, p3, d2, d3, d4)
	}
	return dst, nil
}

// HammingDecode corrects and extracts data bits from 7-bit codewords
// (length divisible by 7), appending the 4 data bits per codeword to
// dst. It returns the number of corrected single-bit errors. Double-bit
// errors are miscorrected — that is inherent to the code, and the outer
// CRC catches them.
func HammingDecode(dst, code []byte) ([]byte, int, error) {
	if len(code)%7 != 0 {
		return nil, 0, fmt.Errorf("fec: hamming code length must be a multiple of 7, got %d", len(code))
	}
	corrected := 0
	for i := 0; i < len(code); i += 7 {
		var w [7]byte
		for j := 0; j < 7; j++ {
			w[j] = code[i+j] & 1
		}
		// Syndrome: which parity checks fail. s = position of the error
		// (1-indexed), 0 if clean.
		s1 := w[0] ^ w[2] ^ w[4] ^ w[6]
		s2 := w[1] ^ w[2] ^ w[5] ^ w[6]
		s3 := w[3] ^ w[4] ^ w[5] ^ w[6]
		s := int(s1) | int(s2)<<1 | int(s3)<<2
		if s != 0 {
			w[s-1] ^= 1
			corrected++
		}
		dst = append(dst, w[2], w[4], w[5], w[6])
	}
	return dst, corrected, nil
}
