// Package fec provides the error-detection and error-correction coding
// used by mmTag frames: CRCs for error detection, a Hamming(7,4) code for
// the lightweight header, a rate-1/2 constraint-length-7 convolutional
// code with Viterbi decoding for payloads, plus the block interleaver
// and scrambler that condition the coded stream.
//
// DESIGN.md: section 3 (module inventory); the coded-link experiment E12 of
// section 4 exercises it end to end.
package fec

// CRC16 computes the CRC-16/CCITT-FALSE checksum (poly 0x1021, init
// 0xFFFF) of data, the checksum mmTag frames carry in their trailer.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// CRC8 computes the CRC-8 (poly 0x07, init 0x00) used for the short
// frame header.
func CRC8(data []byte) uint8 {
	crc := uint8(0)
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// CRC32IEEE computes the standard IEEE 802.3 CRC-32 (reflected,
// poly 0xEDB88320, init/final 0xFFFFFFFF).
func CRC32IEEE(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc ^= uint32(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xEDB88320
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}
