package fec

import (
	"fmt"
	"math"
)

// Rate-1/2, constraint-length-7 convolutional code with the industry
// standard generator polynomials 171/133 (octal) — the code used by
// 802.11, DVB and deep-space links, decoded with a Viterbi decoder
// (hard or soft decision).
const (
	convK     = 7
	numStates = 1 << (convK - 1) // 64
	g0        = 0o171
	g1        = 0o133
)

// parity returns the XOR of the bits of x.
func parity(x int) byte {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// ConvEncode encodes data bits (0/1) with the rate-1/2 K=7 code,
// flushing with K-1 zero tail bits so the decoder terminates in state 0.
// The output length is 2*(len(data)+6) bits, appended to dst.
func ConvEncode(dst, data []byte) []byte {
	state := 0
	emit := func(bit byte) {
		reg := state | int(bit&1)<<(convK-1)
		dst = append(dst, parity(reg&g0), parity(reg&g1))
		state = reg >> 1
	}
	for _, b := range data {
		emit(b)
	}
	for i := 0; i < convK-1; i++ {
		emit(0)
	}
	return dst
}

// ViterbiDecode decodes a hard-decision bit stream produced by
// ConvEncode (length divisible by 2, at least the 12 tail bits) and
// returns the data bits. The traceback assumes the encoder's zero
// flush, so the returned length is len(code)/2 - 6.
func ViterbiDecode(code []byte) ([]byte, error) {
	if len(code)%2 != 0 {
		return nil, fmt.Errorf("fec: coded length must be even, got %d", len(code))
	}
	nSteps := len(code) / 2
	if nSteps < convK-1 {
		return nil, fmt.Errorf("fec: coded stream too short (%d symbol pairs)", nSteps)
	}
	soft := make([]float64, len(code))
	for i, b := range code {
		if b != 0 {
			soft[i] = 1
		}
	}
	return viterbi(soft, nSteps)
}

// ViterbiDecodeSoft decodes soft-decision metrics: llr[i] in [0, 1] is
// the estimated probability-like level of coded bit i (0 = strong 0,
// 1 = strong 1). Euclidean branch metrics give the standard ~2 dB gain
// over hard decisions.
func ViterbiDecodeSoft(level []float64) ([]byte, error) {
	if len(level)%2 != 0 {
		return nil, fmt.Errorf("fec: coded length must be even, got %d", len(level))
	}
	nSteps := len(level) / 2
	if nSteps < convK-1 {
		return nil, fmt.Errorf("fec: coded stream too short (%d symbol pairs)", nSteps)
	}
	return viterbi(level, nSteps)
}

// viterbi runs the add-compare-select recursion over nSteps symbol
// pairs with Euclidean metrics against expected bits {0,1}.
func viterbi(level []float64, nSteps int) ([]byte, error) {
	const inf = math.MaxFloat64 / 4
	metric := make([]float64, numStates)
	next := make([]float64, numStates)
	for i := 1; i < numStates; i++ {
		metric[i] = inf // encoder starts in state 0
	}
	// survivors[t][s] = input bit that led to state s at step t+1, plus
	// predecessor implied by the trellis structure.
	type pred struct {
		state int
		bit   byte
	}
	surv := make([][]pred, nSteps)

	// Precompute transitions: from state s with input b, the shift
	// register is reg = s | b<<6; outputs parity(reg&g0), parity(reg&g1);
	// next state reg>>1.
	type trans struct {
		next int
		out0 float64
		out1 float64
	}
	var tr [numStates][2]trans
	for s := 0; s < numStates; s++ {
		for b := 0; b < 2; b++ {
			reg := s | b<<(convK-1)
			tr[s][b] = trans{
				next: reg >> 1,
				out0: float64(parity(reg & g0)),
				out1: float64(parity(reg & g1)),
			}
		}
	}

	for t := 0; t < nSteps; t++ {
		r0, r1 := level[2*t], level[2*t+1]
		for i := range next {
			next[i] = inf
		}
		surv[t] = make([]pred, numStates)
		for s := 0; s < numStates; s++ {
			if metric[s] >= inf {
				continue
			}
			for b := 0; b < 2; b++ {
				x := tr[s][b]
				d0 := r0 - x.out0
				d1 := r1 - x.out1
				m := metric[s] + d0*d0 + d1*d1
				if m < next[x.next] {
					next[x.next] = m
					surv[t][x.next] = pred{state: s, bit: byte(b)}
				}
			}
		}
		metric, next = next, metric
	}

	// Traceback from state 0 (the zero flush guarantees it).
	state := 0
	bits := make([]byte, nSteps)
	for t := nSteps - 1; t >= 0; t-- {
		p := surv[t][state]
		bits[t] = p.bit
		state = p.state
	}
	// Drop the K-1 tail bits.
	return bits[:nSteps-(convK-1)], nil
}

// ConvRate returns the code rate (1/2).
func ConvRate() float64 { return 0.5 }

// ConvTailBits returns the number of zero tail bits appended by the
// encoder.
func ConvTailBits() int { return convK - 1 }
