// Package link is the tiered-fidelity link engine: one Engine interface
// with three implementations that trade physical fidelity for speed.
// Tier a (Waveform) runs the full waveform DSP chain — vanatta
// modulator, per-sample AWGN, integrate-and-dump, slicing, and the AP
// demodulator for whole frames. Tier b (Symbol) draws symbol-level
// Monte-Carlo outcomes (phy.MeasureBER, the reference E3 validated
// against the waveform chain). Tier c (Budget) samples closed-form
// link-budget outcomes from the rfmath BER/PER expressions with a
// single uniform draw per frame. Thresholds maps a link SNR to the
// cheapest tier that still resolves it, and the calibration suite in
// this package pins each tier to the one above it over the E3 grid.
//
// DESIGN.md: §9 (tiered-fidelity link engine); section 6's fidelity
// levels are the three tiers, made explicit and selectable.
package link

import (
	"fmt"
	"math"
	"math/rand"

	"mmtag/internal/mac"
	"mmtag/internal/phy"
)

// Tier identifies a fidelity level of the ladder. Lower values are
// higher fidelity.
type Tier int

const (
	// TierWaveform is the full waveform DSP chain (tier a).
	TierWaveform Tier = iota
	// TierSymbol is symbol-level Monte-Carlo (tier b).
	TierSymbol
	// TierBudget is closed-form link-budget sampling (tier c).
	TierBudget
	numTiers
)

// String returns the ladder letter ("a", "b", "c").
func (t Tier) String() string {
	switch t {
	case TierWaveform:
		return "a"
	case TierSymbol:
		return "b"
	case TierBudget:
		return "c"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Engine is one fidelity level of the link ladder. Implementations are
// safe for serial reuse but not for concurrent use; parallel callers
// build one engine per worker (they are cheap next to the work they
// model).
type Engine interface {
	// Tier reports the engine's fidelity level.
	Tier() Tier
	// MeasureBER estimates the bit error rate of the modulation at
	// linear Eb/N0 over nBits transmitted bits, drawing randomness from
	// rng. Tier c is closed-form and ignores rng.
	MeasureBER(mod mac.Modulation, ebn0 float64, nBits int, rng *rand.Rand) (phy.BERResult, error)
	// FrameSuccess reports whether a single data frame carrying
	// payloadBytes decodes at the given linear SNR (measured in the
	// rate's symbol-rate noise bandwidth, as mac.Rate.BERAt expects).
	FrameSuccess(r mac.Rate, snr float64, payloadBytes int, rng *rand.Rand) (bool, error)
}

// Thresholds maps link SNR to the cheapest tier that still resolves
// it: at or above WaveformMinDB the full chain runs, at or above
// SymbolMinDB the symbol Monte-Carlo, below that the closed-form
// budget. The strongest links get the most fidelity because that is
// where waveform effects (sync, settling, quantization) still matter;
// the long tail of weak links is governed by the closed-form curves the
// calibration suite pins.
type Thresholds struct {
	WaveformMinDB float64
	SymbolMinDB   float64
}

// DefaultThresholds reserves the waveform chain for very strong links
// and the symbol tier for the contended middle of the cell.
func DefaultThresholds() Thresholds {
	return Thresholds{WaveformMinDB: 30, SymbolMinDB: 15}
}

// AllBudget forces every link to tier c — the million-tag setting.
func AllBudget() Thresholds {
	return Thresholds{WaveformMinDB: math.Inf(1), SymbolMinDB: math.Inf(1)}
}

// normalized returns a copy with WaveformMinDB >= SymbolMinDB, which
// makes Pick monotone in SNR by construction. NaN bounds disable their
// tier (a NaN comparison is always false, so the pick falls through).
func (t Thresholds) normalized() Thresholds {
	if t.WaveformMinDB < t.SymbolMinDB {
		t.WaveformMinDB = t.SymbolMinDB
	}
	return t
}

// Pick returns the tier serving a link of the given SNR (dB). The
// result is monotone in snrDB: raising the SNR never picks a cheaper
// tier. NaN input lands in tier c, the tier that tolerates arbitrary
// garbage by clamping.
func (t Thresholds) Pick(snrDB float64) Tier {
	n := t.normalized()
	switch {
	case snrDB >= n.WaveformMinDB:
		return TierWaveform
	case snrDB >= n.SymbolMinDB:
		return TierSymbol
	default:
		return TierBudget
	}
}
