package link

import (
	"math"
	"math/rand"
	"testing"

	"mmtag/internal/mac"
	"mmtag/internal/par"
	"mmtag/internal/rfmath"
)

func TestTierString(t *testing.T) {
	if TierWaveform.String() != "a" || TierSymbol.String() != "b" || TierBudget.String() != "c" {
		t.Fatalf("tier letters wrong: %v %v %v", TierWaveform, TierSymbol, TierBudget)
	}
}

func TestThresholdsPick(t *testing.T) {
	th := Thresholds{WaveformMinDB: 30, SymbolMinDB: 15}
	cases := []struct {
		snr  float64
		want Tier
	}{
		{35, TierWaveform}, {30, TierWaveform},
		{29.9, TierSymbol}, {15, TierSymbol},
		{14.9, TierBudget}, {-40, TierBudget},
		{math.Inf(-1), TierBudget}, {math.Inf(1), TierWaveform},
		{math.NaN(), TierBudget},
	}
	for _, c := range cases {
		if got := th.Pick(c.snr); got != c.want {
			t.Errorf("Pick(%g) = %v, want %v", c.snr, got, c.want)
		}
	}
}

func TestThresholdsNormalizeInverted(t *testing.T) {
	// An inverted pair (waveform bound below symbol bound) must still
	// pick monotonically: the waveform bound is raised to the symbol
	// bound, never the other way around.
	th := Thresholds{WaveformMinDB: 10, SymbolMinDB: 20}
	prev := TierBudget
	for snr := -10.0; snr <= 40; snr += 0.25 {
		cur := th.Pick(snr)
		if cur > prev {
			t.Fatalf("Pick not monotone at %g dB: %v after %v", snr, cur, prev)
		}
		prev = cur
	}
	if th.Pick(15) != TierBudget {
		t.Fatalf("inverted thresholds: 15 dB should stay tier c, got %v", th.Pick(15))
	}
}

func TestAllBudget(t *testing.T) {
	th := AllBudget()
	for _, snr := range []float64{-100, 0, 50, 500} {
		if got := th.Pick(snr); got != TierBudget {
			t.Fatalf("AllBudget().Pick(%g) = %v", snr, got)
		}
	}
}

func TestBudgetMeasureBERDeterministic(t *testing.T) {
	var b Budget
	mod := mac.ModQPSK()
	r1, err := b.MeasureBER(mod, rfmath.FromDB(4), 60000, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := b.MeasureBER(mod, rfmath.FromDB(4), 60000, nil)
	if r1 != r2 {
		t.Fatalf("tier c not deterministic: %+v vs %+v", r1, r2)
	}
	want := rfmath.BERQPSK(rfmath.FromDB(4))
	if got := r1.Rate(); math.Abs(got-want) > 1.0/60000 {
		t.Fatalf("tier c BER %g far from closed form %g", got, want)
	}
}

func TestBudgetSuccessProbBounds(t *testing.T) {
	var b Budget
	r := mac.Rate{Mod: mac.ModQPSK(), BitRate: 20e6}
	for _, snr := range []float64{math.NaN(), math.Inf(-1), -5, 0, 1e-12, 1, 100, math.Inf(1)} {
		p := b.SuccessProb(r, snr, 400)
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("SuccessProb(snr=%g) = %g out of [0,1]", snr, p)
		}
	}
	if p := b.SuccessProb(r, 1e6, 400); p < 0.999 {
		t.Fatalf("huge SNR should succeed, got %g", p)
	}
	if p := b.SuccessProb(r, 1e-9, 400); p > 1e-3 {
		t.Fatalf("dead link should fail, got %g", p)
	}
	if p := b.SuccessProb(r, 10, 0); p != 1 {
		t.Fatalf("zero air bits must be certain success, got %g", p)
	}
}

func TestBudgetFrameOutcomeMatchesProb(t *testing.T) {
	var b Budget
	r := mac.Rate{Mod: mac.ModQPSK(), BitRate: 20e6}
	const snrDB, airBits, n = 8.0, 400, 20000
	p := b.SuccessProb(r, rfmath.FromDB(snrDB), airBits)
	if p < 0.05 || p > 0.95 {
		t.Fatalf("test point not informative: p=%g", p)
	}
	s := par.NewStream(7, 1)
	ok := 0
	for i := 0; i < n; i++ {
		if b.FrameOutcome(r, rfmath.FromDB(snrDB), airBits, &s) {
			ok++
		}
	}
	if z := ZAgainstModel(ok, n, p); z > ZThreshold {
		t.Fatalf("FrameOutcome rate %d/%d disagrees with SuccessProb %g (z=%.1f)", ok, n, p, z)
	}
}

func TestSymbolMeasureBERMatchesPhy(t *testing.T) {
	s := NewSymbol()
	mod := mac.ModBPSK()
	ebn0 := rfmath.FromDB(4)
	got, err := s.MeasureBER(mod, ebn0, 60000, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	want := rfmath.BERBPSK(ebn0)
	if z := ZAgainstModel(got.Errors, got.Bits, want); z > ZThreshold {
		t.Fatalf("symbol BER %g vs closed form %g: z=%.1f", got.Rate(), want, z)
	}
}

func TestWaveformMeasureBERSane(t *testing.T) {
	w := NewWaveform()
	mod := mac.ModQPSK()
	ebn0 := rfmath.FromDB(4)
	got, err := w.MeasureBER(mod, ebn0, 60000, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	want := rfmath.BERQPSK(ebn0)
	if z := ZAgainstModel(got.Errors, got.Bits, want); z > ZThreshold {
		t.Fatalf("waveform BER %g vs closed form %g: z=%.1f", got.Rate(), want, z)
	}
}

func TestWaveformFrameSuccessEndpoints(t *testing.T) {
	w := NewWaveform()
	r := mac.Rate{Mod: mac.ModQPSK(), BitRate: 20e6}
	rng := rand.New(rand.NewSource(1))
	ok, err := w.FrameSuccess(r, rfmath.FromDB(25), 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("25 dB frame should decode")
	}
	ok, err = w.FrameSuccess(r, rfmath.FromDB(-20), 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("-20 dB frame should not decode")
	}
	if ok, _ := w.FrameSuccess(r, math.NaN(), 32, rng); ok {
		t.Fatal("NaN SNR must fail closed")
	}
}

func TestEngineInterfaces(t *testing.T) {
	engines := []Engine{NewWaveform(), NewSymbol(), Budget{}}
	want := []Tier{TierWaveform, TierSymbol, TierBudget}
	for i, e := range engines {
		if e.Tier() != want[i] {
			t.Fatalf("engine %d reports tier %v, want %v", i, e.Tier(), want[i])
		}
	}
}
