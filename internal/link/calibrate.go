package link

import (
	"math"

	"mmtag/internal/mac"
	"mmtag/internal/phy"
)

// Calibration machinery: the fixed grid the tiers are compared over
// and the statistics that turn Monte-Carlo counts into pass/fail
// verdicts with explicit confidence bounds.

// GridPoint is one cell of the calibration grid: a tag alphabet at a
// linear-scale operating point.
type GridPoint struct {
	Mod    mac.Modulation
	EbN0DB float64
}

// E3Grid returns the calibration grid — the same (modulation, Eb/N0)
// lattice experiment E3 publishes: every tag alphabet at 2..10 dB. The
// cross-tier calibration tests sweep exactly this grid so the ladder is
// pinned where the repo's own published numbers live.
func E3Grid() []GridPoint {
	mods := []mac.Modulation{
		mac.ModOOK(), mac.ModBPSK(), mac.ModQPSK(), mac.ModPSK8(), mac.ModQAM16(),
	}
	var grid []GridPoint
	for _, m := range mods {
		for _, db := range []float64{2, 4, 6, 8, 10} {
			grid = append(grid, GridPoint{Mod: m, EbN0DB: db})
		}
	}
	return grid
}

// CalibBits sizes a Monte-Carlo run for an expected error rate: at
// least 60 expected errors (so the normal approximation behind the z
// statistics holds), at least 60k bits, capped at 300k so the waveform
// tier stays affordable. Points whose expected error count stays below
// InformativeErrors even at the cap are compared by absolute bound
// instead of z-test.
func CalibBits(expected float64) int {
	n := 60000
	if expected > 0 && expected < 1e-3 {
		n = int(60 / expected)
	}
	if n > 300000 {
		n = 300000
	}
	return n
}

// InformativeErrors is the minimum expected error count for the
// two-proportion z-test to be trusted; below it the Gaussian
// approximation to the binomial is poor and the calibration falls back
// to an absolute-rate bound.
const InformativeErrors = 20

// ZThreshold is the calibration pass bound on |z|. 4.5 sigma puts the
// per-point false-alarm probability near 7e-6 — over the 25-point grid
// a fixed-seed run essentially never trips by chance, while a modelling
// error of even a fraction of a dB shows up at tens of sigma.
const ZThreshold = 4.5

// ZTwoProportion returns the two-proportion z statistic between two
// Monte-Carlo BER measurements (pooled standard error). Zero counts on
// both sides compare equal (z = 0).
func ZTwoProportion(a, b phy.BERResult) float64 {
	na, nb := float64(a.Bits), float64(b.Bits)
	if na == 0 || nb == 0 {
		return math.Inf(1)
	}
	pool := (float64(a.Errors) + float64(b.Errors)) / (na + nb)
	se := math.Sqrt(pool * (1 - pool) * (1/na + 1/nb))
	if se == 0 {
		if a.Errors == b.Errors {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a.Rate()-b.Rate()) / se
}

// ZAgainstModel returns the one-sample z statistic of k successes in n
// trials against a model probability p. Degenerate model probabilities
// (0 or 1) return 0 when the observation agrees exactly and +Inf when
// it does not.
func ZAgainstModel(k, n int, p float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	se := math.Sqrt(p * (1 - p) / float64(n))
	if se == 0 {
		if float64(k) == p*float64(n) {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(k)/float64(n)-p) / se
}
