package link

import (
	"fmt"
	"math"
	"math/rand"

	"mmtag/internal/mac"
	"mmtag/internal/par"
	"mmtag/internal/phy"
)

// Budget is tier c: closed-form link-budget outcome sampling. A frame
// succeeds with the rfmath PER expression's complement; a BER
// measurement is the closed-form curve itself, quantized to the nearest
// error count. The zero value is ready to use, holds no state, and is
// safe for concurrent use.
type Budget struct{}

// Tier implements Engine.
func (Budget) Tier() Tier { return TierBudget }

// clamp01 sanitizes a probability: NaN and negative collapse to 0,
// anything above 1 to 1. The closed-form expressions can emit NaN for
// adversarial SNR inputs (fuzzed geometry), and a probability must
// never leave [0, 1].
func clamp01(p float64) float64 {
	switch {
	case math.IsNaN(p), p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// BER returns the closed-form bit error rate of the modulation at
// linear Eb/N0, clamped to [0, 1]. Non-positive or NaN Eb/N0 reports
// the coin-flip rate 0.5, matching mac.Rate.BERAt's convention for a
// dead link.
func (Budget) BER(mod mac.Modulation, ebn0 float64) float64 {
	if math.IsNaN(ebn0) || ebn0 <= 0 {
		return 0.5
	}
	return clamp01(mod.BER(ebn0))
}

// MeasureBER implements Engine: the closed-form curve quantized to
// round(ber*nBits) errors. rng is unused — tier c is deterministic
// given its inputs.
func (b Budget) MeasureBER(mod mac.Modulation, ebn0 float64, nBits int, _ *rand.Rand) (phy.BERResult, error) {
	if nBits <= 0 {
		return phy.BERResult{}, fmt.Errorf("link: bit count must be positive, got %d", nBits)
	}
	ber := b.BER(mod, ebn0)
	return phy.BERResult{Bits: nBits, Errors: int(math.Round(ber * float64(nBits)))}, nil
}

// SuccessProb returns the frame success probability for airBits on-air
// bits at linear SNR (symbol-rate noise bandwidth), always in [0, 1]
// for any input including NaN and infinities.
func (Budget) SuccessProb(r mac.Rate, snr float64, airBits int) float64 {
	if airBits <= 0 {
		return 1 // no bits at risk
	}
	return clamp01(1 - r.FramePER(snr, airBits))
}

// FrameSuccess implements Engine: one Bernoulli draw against
// SuccessProb over the frame's on-air bits.
func (b Budget) FrameSuccess(r mac.Rate, snr float64, payloadBytes int, rng *rand.Rand) (bool, error) {
	return rng.Float64() < b.SuccessProb(r, snr, airBitsFor(r, payloadBytes)), nil
}

// FrameOutcome is the allocation-free hot-path variant of FrameSuccess,
// drawing from a value-type par.Stream instead of a heap *rand.Rand.
// The million-tag deployment loop calls this once per (tag, frame).
func (b Budget) FrameOutcome(r mac.Rate, snr float64, airBits int, s *par.Stream) bool {
	return s.Float64() < b.SuccessProb(r, snr, airBits)
}
