package link

import (
	"fmt"
	"math"
	"math/rand"

	"mmtag/internal/frame"
	"mmtag/internal/mac"
	"mmtag/internal/phy"
	"mmtag/internal/rfmath"
	"mmtag/internal/vanatta"
)

// ebn0For maps a rate-bandwidth SNR to the linear Eb/N0 the symbol and
// waveform tiers simulate at, mirroring mac.Rate.BERAt: noise bandwidth
// equals the symbol rate, and coded rates see the modelled coding gain.
func ebn0For(r mac.Rate, snr float64) float64 {
	ebn0 := snr / float64(r.Mod.BitsPerSymbol)
	if r.Coded {
		ebn0 *= rfmath.FromDB(mac.CodingGainDB)
	}
	return ebn0
}

// airBitsFor returns the on-air bit count of a data frame carrying
// payloadBytes under rate r's coding setting — the frame geometry every
// tier prices identically.
func airBitsFor(r mac.Rate, payloadBytes int) int {
	return frame.AirBits(payloadBytes, frame.Options{Coded: r.Coded})
}

// Symbol is tier b: symbol-level Monte-Carlo over the tag alphabets via
// phy.MeasureBER, the reference measurement experiment E3 validates
// against the closed-form curves. It caches constellations per
// modulation; use one Symbol per goroutine.
type Symbol struct {
	consts map[string]*phy.Constellation
}

// NewSymbol returns a tier-b engine.
func NewSymbol() *Symbol {
	return &Symbol{consts: make(map[string]*phy.Constellation)}
}

// Tier implements Engine.
func (s *Symbol) Tier() Tier { return TierSymbol }

// constellation resolves (and caches) the phy constellation for a tag
// alphabet name.
func (s *Symbol) constellation(name string) (*phy.Constellation, error) {
	if c, ok := s.consts[name]; ok {
		return c, nil
	}
	set, err := vanatta.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("link: %w", err)
	}
	c, err := phy.NewConstellation(set.Name(), set.States())
	if err != nil {
		return nil, err
	}
	s.consts[name] = c
	return c, nil
}

// MeasureBER implements Engine via the phy symbol Monte-Carlo.
func (s *Symbol) MeasureBER(mod mac.Modulation, ebn0 float64, nBits int, rng *rand.Rand) (phy.BERResult, error) {
	c, err := s.constellation(mod.Name)
	if err != nil {
		return phy.BERResult{}, err
	}
	return phy.MeasureBER(c, ebn0, nBits, rng)
}

// FrameSuccess implements Engine: the frame's on-air bits run through
// the symbol Monte-Carlo and the frame survives iff none flip — the
// same independence model tier c's PERFromBER closes in one formula.
func (s *Symbol) FrameSuccess(r mac.Rate, snr float64, payloadBytes int, rng *rand.Rand) (bool, error) {
	ebn0 := ebn0For(r, snr)
	if math.IsNaN(ebn0) || ebn0 <= 0 {
		return false, nil
	}
	res, err := s.MeasureBER(r.Mod, ebn0, airBitsFor(r, payloadBytes), rng)
	if err != nil {
		return false, err
	}
	return res.Errors == 0, nil
}
