package link

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"mmtag/internal/ap"
	"mmtag/internal/channel"
	"mmtag/internal/dsp"
	"mmtag/internal/frame"
	"mmtag/internal/mac"
	"mmtag/internal/phy"
	"mmtag/internal/vanatta"
)

// waveformSPS is the oversampling factor of the tier-a chain. Four
// samples per symbol is enough for the integrate-and-dump receiver at
// the ideal (zero rise time) modulator setting the engine uses; the
// rise-time physics itself is experiment E11's subject, not the
// ladder's.
const waveformSPS = 4

// waveformSymbolRate is the nominal symbol rate the tier-a modulators
// run at. With a zero rise time the waveform shape is rate-invariant,
// so any rate serves; 10 MHz matches the discovery probe order.
const waveformSymbolRate = 10e6

// waveformPreambleLen is the preamble length of tier-a frames (the
// standard 63-symbol m-sequence the demodulator correlates against).
const waveformPreambleLen = 63

// Waveform is tier a: the full waveform DSP chain. Bits modulate a
// vanatta reflection-coefficient waveform, per-sample AWGN is added at
// the requested operating point, and reception runs integrate-and-dump
// plus slicing (for BER) or the complete AP demodulator — sync, channel
// estimation, decision, CRC — for whole frames. Caches are per
// modulation; use one Waveform per goroutine.
type Waveform struct {
	consts map[string]*phy.Constellation
	mods   map[string]*vanatta.Modulator
	demods map[string]*ap.Demodulator
	wave   []complex128 // scratch waveform buffer
	syms   []int        // scratch symbol buffer

	// Batched frame-path scratch (StageFrame/FlushFrames, batch.go).
	stage    FrameBatch        // FrameSuccessBatch's staging area
	flushIdx []int             // trial indices of the group being flushed
	flushRx  dsp.Batch         // gathered lanes of that group
	flushRes []ap.UplinkResult // its batched demodulation results
}

// NewWaveform returns a tier-a engine.
func NewWaveform() *Waveform {
	return &Waveform{
		consts: make(map[string]*phy.Constellation),
		mods:   make(map[string]*vanatta.Modulator),
		demods: make(map[string]*ap.Demodulator),
	}
}

// Tier implements Engine.
func (w *Waveform) Tier() Tier { return TierWaveform }

func (w *Waveform) constellation(name string) (*phy.Constellation, error) {
	if c, ok := w.consts[name]; ok {
		return c, nil
	}
	set, err := vanatta.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("link: %w", err)
	}
	c, err := phy.NewConstellation(set.Name(), set.States())
	if err != nil {
		return nil, err
	}
	w.consts[name] = c
	return c, nil
}

func (w *Waveform) modulator(name string) (*vanatta.Modulator, error) {
	if m, ok := w.mods[name]; ok {
		m.Reset()
		return m, nil
	}
	set, err := vanatta.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("link: %w", err)
	}
	m, err := vanatta.NewModulator(set, waveformSymbolRate, waveformSymbolRate*waveformSPS, 0)
	if err != nil {
		return nil, err
	}
	w.mods[name] = m
	return m, nil
}

func (w *Waveform) demodulator(name string, coded bool) (*ap.Demodulator, error) {
	key := name
	if coded {
		key += "+coded"
	}
	if d, ok := w.demods[key]; ok {
		return d, nil
	}
	c, err := w.constellation(name)
	if err != nil {
		return nil, err
	}
	d, err := ap.NewDemodulator(c, waveformPreambleLen, frame.Options{Coded: coded})
	if err != nil {
		return nil, err
	}
	w.demods[key] = d
	return d, nil
}

// MeasureBER implements Engine at waveform fidelity: random bits pack
// into symbols, the modulator renders Γ(t), AWGN lands on every sample
// at the power that puts the post-integrate-and-dump operating point at
// the requested Eb/N0, and the dumped symbols are sliced and compared.
// The RNG draw order (all bit draws, then the per-sample noise pairs)
// is fixed, so results depend only on the rng stream.
func (w *Waveform) MeasureBER(mod mac.Modulation, ebn0 float64, nBits int, rng *rand.Rand) (phy.BERResult, error) {
	if ebn0 <= 0 || math.IsNaN(ebn0) {
		return phy.BERResult{}, fmt.Errorf("link: Eb/N0 must be positive, got %g", ebn0)
	}
	if nBits <= 0 {
		return phy.BERResult{}, fmt.Errorf("link: bit count must be positive, got %d", nBits)
	}
	c, err := w.constellation(mod.Name)
	if err != nil {
		return phy.BERResult{}, err
	}
	m, err := w.modulator(mod.Name)
	if err != nil {
		return phy.BERResult{}, err
	}
	bps := c.BitsPerSymbol()
	nSym := (nBits + bps - 1) / bps
	syms := w.syms[:0]
	sym, fill := 0, 0
	for i := 0; i < nBits; i++ {
		sym = sym<<1 | rng.Intn(2)
		fill++
		if fill == bps {
			syms = append(syms, sym)
			sym, fill = 0, 0
		}
	}
	if fill > 0 {
		syms = append(syms, sym<<(bps-fill))
	}
	w.syms = syms

	wave := m.Waveform(w.wave[:0], syms)
	w.wave = wave
	// Integrate-and-dump averages sps samples, dividing the noise power
	// by sps; pre-scale so the dumped symbol sits at Es/N0 = ebn0*bps.
	es := c.MeanPower()
	n0 := es / (ebn0 * float64(bps))
	channel.AWGN(rng, wave, n0*waveformSPS)

	rem := nBits - (nSym-1)*bps
	errs := 0
	inv := complex(1.0/waveformSPS, 0)
	for i, s := range syms {
		var acc complex128
		for k := 0; k < waveformSPS; k++ {
			acc += wave[i*waveformSPS+k]
		}
		d := c.Nearest(acc * inv)
		diff := uint(s ^ d)
		if i == nSym-1 && rem < bps {
			diff >>= uint(bps - rem)
		}
		errs += bits.OnesCount(diff)
	}
	return phy.BERResult{Bits: nBits, Errors: errs}, nil
}

// FrameSuccess implements Engine with the complete chain: a real data
// frame is encoded (with the rate's coding setting), prefixed by the
// sync preamble, modulated, perturbed at the SNR operating point, and
// handed to the AP demodulator; success is a CRC-clean decode. Unlike
// the cheaper tiers this pays sync and channel-estimation losses, which
// is exactly why strong links deserve it.
func (w *Waveform) FrameSuccess(r mac.Rate, snr float64, payloadBytes int, rng *rand.Rand) (bool, error) {
	if math.IsNaN(snr) || snr <= 0 {
		return false, nil
	}
	if payloadBytes < 0 {
		return false, fmt.Errorf("link: payload bytes must be >= 0, got %d", payloadBytes)
	}
	c, err := w.constellation(r.Mod.Name)
	if err != nil {
		return false, err
	}
	dem, err := w.demodulator(r.Mod.Name, r.Coded)
	if err != nil {
		return false, err
	}
	m, err := w.modulator(r.Mod.Name)
	if err != nil {
		return false, err
	}
	payload := make([]byte, payloadBytes)
	rng.Read(payload)
	f := &frame.Frame{Type: frame.TypeData, TagID: 1, Payload: payload}
	bits, err := f.EncodeBits(frame.Options{Coded: r.Coded})
	if err != nil {
		return false, err
	}
	syms := append(w.syms[:0], dem.PreambleSymbolIndices()...)
	syms = c.MapBits(syms, bits)
	w.syms = syms
	wave := m.Waveform(w.wave[:0], syms)
	w.wave = wave
	// snr is Es/N0 (noise bandwidth = symbol rate); the demodulator's
	// integrate-and-dump divides per-sample noise power by sps.
	es := c.MeanPower()
	channel.AWGN(rng, wave, es/snr*waveformSPS)
	res := dem.Demodulate(wave, waveformSPS)
	return res.OK(), nil
}
