package link

import (
	"fmt"
	"math"
	"math/rand"

	"mmtag/internal/channel"
	"mmtag/internal/dsp"
	"mmtag/internal/frame"
	"mmtag/internal/mac"
)

// This file is the batched tier-a frame path: callers stage any number
// of frame trials (all randomness is drawn at stage time, in stage
// order, so a stage-then-flush sequence consumes every RNG stream
// exactly as the serial FrameSuccess loop would) and then flush the
// accumulated waveforms through ap.Demodulator.DemodulateBatch — one
// plan walk and one preamble spectrum per FFT size for the whole
// batch, instead of one per frame. Results are bit-identical to
// calling FrameSuccess per trial.
//
// DESIGN.md: section 11 (batched demodulation).

// stagedTrial records what FlushFrames needs to finish one staged
// frame: which demodulator to use, or the already-decided outcome for
// trials the serial path would never demodulate (invalid SNR).
type stagedTrial struct {
	mod     string
	coded   bool
	decided bool // outcome fixed at stage time, no demodulation needed
	ok      bool // that outcome
	taken   bool // already swept into an earlier flush group
}

// FrameBatch accumulates staged frame trials for one batched flush.
// The zero value is ready to use; Reset recycles the buffers. A
// FrameBatch belongs to one Waveform engine and, like the engine, is
// not safe for concurrent use.
type FrameBatch struct {
	rx     dsp.Batch
	trials []stagedTrial
}

// Len returns the number of staged, unflushed trials.
func (b *FrameBatch) Len() int { return len(b.trials) }

// Reset drops staged trials, keeping the backing buffers.
func (b *FrameBatch) Reset() {
	b.rx.Reset(0, b.rx.Stride())
	b.trials = b.trials[:0]
}

// BatchEngine is an Engine whose frame path can amortize receive DSP
// across trials: stage per-trial waveforms (randomness per trial, at
// stage time), then flush the DSP in one batched pass. The contract
// mirrors FrameSuccess trial for trial: flushing N staged trials
// yields exactly the N outcomes the serial calls would, from the same
// RNG draws.
type BatchEngine interface {
	Engine
	// StageFrame generates (but does not demodulate) one frame trial
	// into b, drawing all of the trial's randomness from rng now.
	StageFrame(b *FrameBatch, r mac.Rate, snr float64, payloadBytes int, rng *rand.Rand) error
	// FlushFrames demodulates every staged trial with the batched
	// kernel and appends one success flag per trial, in stage order,
	// to dst. The batch is reset on return.
	FlushFrames(b *FrameBatch, dst []bool) ([]bool, error)
}

var _ BatchEngine = (*Waveform)(nil)

// StageFrame implements BatchEngine: the transmit half of
// FrameSuccess. The waveform is synthesized straight into a batch
// lane; sync, channel estimation, decision and CRC wait for
// FlushFrames.
func (w *Waveform) StageFrame(b *FrameBatch, r mac.Rate, snr float64, payloadBytes int, rng *rand.Rand) error {
	if math.IsNaN(snr) || snr <= 0 {
		// The serial path returns false without touching rng; keep a
		// placeholder lane so trial i is always lane i.
		b.rx.AddLane()
		b.trials = append(b.trials, stagedTrial{decided: true})
		return nil
	}
	if payloadBytes < 0 {
		return fmt.Errorf("link: payload bytes must be >= 0, got %d", payloadBytes)
	}
	c, err := w.constellation(r.Mod.Name)
	if err != nil {
		return err
	}
	dem, err := w.demodulator(r.Mod.Name, r.Coded)
	if err != nil {
		return err
	}
	m, err := w.modulator(r.Mod.Name)
	if err != nil {
		return err
	}
	payload := make([]byte, payloadBytes)
	rng.Read(payload)
	f := &frame.Frame{Type: frame.TypeData, TagID: 1, Payload: payload}
	bits, err := f.EncodeBits(frame.Options{Coded: r.Coded})
	if err != nil {
		return err
	}
	syms := append(w.syms[:0], dem.PreambleSymbolIndices()...)
	syms = c.MapBits(syms, bits)
	w.syms = syms
	if need := len(syms) * waveformSPS; need > b.rx.Stride() {
		b.rx.Restride(need)
	}
	l := b.rx.AddLane()
	wave := m.Waveform(b.rx.LaneCap(l)[:0], syms)
	es := c.MeanPower()
	channel.AWGN(rng, wave, es/snr*waveformSPS)
	b.rx.SetLaneLen(l, len(wave))
	b.trials = append(b.trials, stagedTrial{mod: r.Mod.Name, coded: r.Coded})
	return nil
}

// FlushFrames implements BatchEngine. Trials are grouped by
// demodulator (modulation × coding) in first-stage order, and each
// group sweeps DemodulateBatch once.
func (w *Waveform) FlushFrames(b *FrameBatch, dst []bool) ([]bool, error) {
	base := len(dst)
	for _, tr := range b.trials {
		dst = append(dst, tr.decided && tr.ok)
	}
	for g := 0; g < len(b.trials); g++ {
		lead := b.trials[g]
		if lead.decided || lead.taken {
			continue
		}
		idx := w.flushIdx[:0]
		for i := g; i < len(b.trials); i++ {
			t := &b.trials[i]
			if !t.decided && !t.taken && t.mod == lead.mod && t.coded == lead.coded {
				idx = append(idx, i)
				t.taken = true
			}
		}
		w.flushIdx = idx
		dem, err := w.demodulator(lead.mod, lead.coded)
		if err != nil {
			return dst, err
		}
		group := &b.rx
		if len(idx) != len(b.trials) {
			// Mixed batch: gather this group's lanes. A homogeneous batch
			// (every trial one demodulator — the common chunked case)
			// skips the copy and sweeps the staged lanes in place.
			w.flushRx.Reset(len(idx), b.rx.Stride())
			for j, i := range idx {
				lane := b.rx.Lane(i)
				copy(w.flushRx.LaneCap(j), lane)
				w.flushRx.SetLaneLen(j, len(lane))
			}
			group = &w.flushRx
		}
		res := dem.DemodulateBatchTo(w.flushRes[:0], group, waveformSPS)
		w.flushRes = res
		if group == &b.rx {
			for _, i := range idx {
				dst[base+i] = res[i].OK()
			}
		} else {
			for j, i := range idx {
				dst[base+i] = res[j].OK()
			}
		}
	}
	b.Reset()
	return dst, nil
}

// FrameTrial is one deferred FrameSuccess call for FrameSuccessBatch.
type FrameTrial struct {
	Rate         mac.Rate
	SNR          float64
	PayloadBytes int
	Rng          *rand.Rand
}

// FrameSuccessBatch stages and flushes trials in one call, appending
// one success flag per trial to ok. It is exactly
// FrameSuccess(trials[i]...) for every i — same RNG consumption, same
// outcomes — with the receive DSP batched.
func (w *Waveform) FrameSuccessBatch(trials []FrameTrial, ok []bool) ([]bool, error) {
	b := &w.stage
	b.Reset()
	for _, tr := range trials {
		if err := w.StageFrame(b, tr.Rate, tr.SNR, tr.PayloadBytes, tr.Rng); err != nil {
			return ok, err
		}
	}
	return w.FlushFrames(b, ok)
}
