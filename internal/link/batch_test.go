package link

import (
	"math"
	"math/rand"
	"testing"

	"mmtag/internal/mac"
)

// batchTrialSpec drives the serial/batched comparison: rate, SNR and
// payload per trial, with some SNRs invalid on purpose.
type batchTrialSpec struct {
	rate    mac.Rate
	snr     float64
	payload int
}

func mixedTrialSpecs() []batchTrialSpec {
	qpsk := mac.Rate{Mod: mac.ModQPSK(), BitRate: 20e6}
	qpskCoded := mac.Rate{Mod: mac.ModQPSK(), BitRate: 10e6, Coded: true}
	bpsk := mac.Rate{Mod: mac.ModBPSK(), BitRate: 10e6}
	return []batchTrialSpec{
		{qpsk, 200, 12},
		{bpsk, 150, 8},
		{qpsk, math.NaN(), 12}, // invalid: no RNG draws, auto-false
		{qpskCoded, 80, 16},
		{qpsk, 0.02, 12}, // deep fade: demod should fail
		{bpsk, -3, 8},    // invalid
		{qpskCoded, 120, 4},
		{qpsk, 500, 20},
	}
}

// TestFrameSuccessBatchMatchesSerial checks the batched frame path
// trial for trial against serial FrameSuccess: same outcomes and the
// same RNG consumption, across mixed modulations, coded and uncoded
// rates, and invalid SNRs, at several batch sizes.
func TestFrameSuccessBatchMatchesSerial(t *testing.T) {
	specs := mixedTrialSpecs()
	for _, n := range []int{1, 2, 7, len(specs) * 8} {
		serialEng := NewWaveform()
		batchEng := NewWaveform()
		serialRng := rand.New(rand.NewSource(42))
		batchRng := rand.New(rand.NewSource(42))

		trials := make([]FrameTrial, n)
		want := make([]bool, n)
		for i := 0; i < n; i++ {
			sp := specs[i%len(specs)]
			got, err := serialEng.FrameSuccess(sp.rate, sp.snr, sp.payload, serialRng)
			if err != nil {
				t.Fatalf("n=%d serial trial %d: %v", n, i, err)
			}
			want[i] = got
			trials[i] = FrameTrial{Rate: sp.rate, SNR: sp.snr, PayloadBytes: sp.payload, Rng: batchRng}
		}

		got, err := batchEng.FrameSuccessBatch(trials, nil)
		if err != nil {
			t.Fatalf("n=%d batch: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d outcomes", n, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("n=%d trial %d: batch=%v serial=%v", n, i, got[i], want[i])
			}
		}
		// Both rngs must have advanced identically: the next draws match.
		if a, b := serialRng.Int63(), batchRng.Int63(); a != b {
			t.Errorf("n=%d: rng streams diverged after trials (%d vs %d)", n, a, b)
		}
	}
}

// TestFrameSuccessBatchHomogeneous exercises the no-gather fast path:
// every trial the same demodulator, including a deep-fade failure.
func TestFrameSuccessBatchHomogeneous(t *testing.T) {
	r := mac.Rate{Mod: mac.ModQPSK(), BitRate: 20e6}
	snrs := []float64{300, 0.01, 120, 90, 250, 0.02, 70}

	serialEng := NewWaveform()
	batchEng := NewWaveform()
	serialRng := rand.New(rand.NewSource(7))
	batchRng := rand.New(rand.NewSource(7))

	var trials []FrameTrial
	var want []bool
	for i, snr := range snrs {
		got, err := serialEng.FrameSuccess(r, snr, 10, serialRng)
		if err != nil {
			t.Fatalf("serial trial %d: %v", i, err)
		}
		want = append(want, got)
		trials = append(trials, FrameTrial{Rate: r, SNR: snr, PayloadBytes: 10, Rng: batchRng})
	}
	got, err := batchEng.FrameSuccessBatch(trials, nil)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("trial %d: batch=%v serial=%v", i, got[i], want[i])
		}
	}
	if a, b := serialRng.Int63(), batchRng.Int63(); a != b {
		t.Errorf("rng streams diverged (%d vs %d)", a, b)
	}
}

// TestStageFrameErrors checks stage-time validation.
func TestStageFrameErrors(t *testing.T) {
	w := NewWaveform()
	var b FrameBatch
	rng := rand.New(rand.NewSource(1))
	r := mac.Rate{Mod: mac.ModQPSK(), BitRate: 20e6}
	if err := w.StageFrame(&b, r, 100, -1, rng); err == nil {
		t.Fatal("negative payload: want error")
	}
	bad := mac.Rate{Mod: mac.Modulation{Name: "nope", BitsPerSymbol: 1}, BitRate: 1e6}
	if err := w.StageFrame(&b, bad, 100, 8, rng); err == nil {
		t.Fatal("unknown modulation: want error")
	}
	// Batch reuse after Reset: stage+flush twice on the same FrameBatch.
	for round := 0; round < 2; round++ {
		if err := w.StageFrame(&b, r, 200, 8, rng); err != nil {
			t.Fatalf("round %d stage: %v", round, err)
		}
		ok, err := w.FlushFrames(&b, nil)
		if err != nil {
			t.Fatalf("round %d flush: %v", round, err)
		}
		if len(ok) != 1 || !ok[0] {
			t.Fatalf("round %d: want one success, got %v", round, ok)
		}
		if b.Len() != 0 {
			t.Fatalf("round %d: batch not reset, len=%d", round, b.Len())
		}
	}
}
