package link

import (
	"math"
	"testing"

	"mmtag/internal/mac"
	"mmtag/internal/par"
)

// FuzzTierSelection: arbitrary threshold pairs and SNR inputs never
// panic, always return a valid tier, and tier boundaries stay monotone
// in SNR (raising the SNR never picks a cheaper tier).
func FuzzTierSelection(f *testing.F) {
	f.Add(30.0, 15.0, 10.0, 20.0)
	f.Add(10.0, 20.0, -5.0, 50.0) // inverted thresholds
	f.Add(math.Inf(1), math.Inf(1), 0.0, 1e9)
	f.Add(math.NaN(), 0.0, math.NaN(), 0.0)
	f.Add(-300.0, -400.0, math.Inf(-1), math.Inf(1))
	f.Fuzz(func(t *testing.T, wavMin, symMin, snrLo, snrHi float64) {
		th := Thresholds{WaveformMinDB: wavMin, SymbolMinDB: symMin}
		for _, snr := range []float64{snrLo, snrHi} {
			tier := th.Pick(snr)
			if tier < TierWaveform || tier >= numTiers {
				t.Fatalf("Pick(%g) returned invalid tier %d", snr, tier)
			}
		}
		if snrLo > snrHi {
			snrLo, snrHi = snrHi, snrLo
		}
		// NaN is unordered; the monotonicity contract only speaks about
		// comparable SNRs.
		if !math.IsNaN(snrLo) && !math.IsNaN(snrHi) {
			lo, hi := th.Pick(snrLo), th.Pick(snrHi)
			if hi > lo {
				t.Fatalf("tier not monotone: Pick(%g)=%v but Pick(%g)=%v", snrLo, lo, snrHi, hi)
			}
		}
	})
}

// FuzzLinkBudgetOutcome: arbitrary SNR and geometry inputs never
// panic the tier-c engine and never produce a probability outside
// [0, 1]. The geometry half mirrors the deployment's analytic budget
// shape (SNR ~ 1/d^4 with a range floor), fed coordinates that may be
// NaN, infinite or negative.
func FuzzLinkBudgetOutcome(f *testing.F) {
	f.Add(uint8(0), 10.0, 400, 1.0, 2.0, int64(42))
	f.Add(uint8(3), math.NaN(), -7, 0.0, 0.0, int64(0))
	f.Add(uint8(200), math.Inf(1), 1<<20, math.Inf(-1), math.NaN(), int64(-1))
	f.Add(uint8(7), -1e300, 0, 1e308, -1e308, int64(7))
	f.Fuzz(func(t *testing.T, rateIdx uint8, snr float64, airBits int, dx, dy float64, seed int64) {
		table := mac.DefaultRateTable()
		r := table[int(rateIdx)%len(table)]
		var bud Budget

		checkProb := func(p float64, label string) {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("%s probability %g outside [0,1]", label, p)
			}
		}
		checkProb(bud.SuccessProb(r, snr, airBits), "direct-snr")

		// Geometry path: the scale deployment's SNR estimate shape, with
		// the same clamp discipline (range floor, non-finite collapse).
		d2 := dx*dx + dy*dy
		const minDist2 = 0.25 * 0.25
		if !(d2 > minDist2) { // catches NaN too
			d2 = minDist2
		}
		const snrAt1m = 3.5e6 // ~65 dB, the deployment's 1 m operating point order
		geoSNR := snrAt1m / (d2 * d2)
		checkProb(bud.SuccessProb(r, geoSNR, airBits), "geometry")

		s := par.NewStream(seed, 9)
		bud.FrameOutcome(r, geoSNR, airBits, &s) // must not panic
		bud.FrameOutcome(r, snr, airBits, &s)

		if airBits > 0 && airBits < 1<<24 {
			res, err := bud.MeasureBER(r.Mod, snr, airBits, nil)
			if err != nil {
				t.Fatalf("MeasureBER(%g, %d): %v", snr, airBits, err)
			}
			if res.Errors < 0 || res.Errors > res.Bits {
				t.Fatalf("error count %d outside [0,%d]", res.Errors, res.Bits)
			}
		}
	})
}
