package link

import (
	"math"
	"math/rand"
	"testing"

	"mmtag/internal/mac"
	"mmtag/internal/rfmath"
)

// The cross-tier calibration suite: every tier is pinned to the one
// above it over the E3 grid with explicit confidence bounds. Tolerance
// policy (documented here, enforced below):
//
//   - Informative points (expected errors >= InformativeErrors at the
//     CalibBits sample size): two-proportion or one-sample z statistic
//     must stay under ZThreshold (4.5 sigma, per-point false-alarm
//     ~7e-6, so the 25-point fixed-seed sweep never trips by chance).
//   - Deep-tail points (both tiers essentially error-free at an
//     affordable sample size): the absolute measured rates must stay
//     under a Poisson-slack bound — the z statistic is meaningless
//     there, but a grossly skewed curve would still surface errors.
//
// The negative test at the bottom proves the machinery has teeth: a
// curve skewed by 1 dB fails the informative-point criterion.

// tailBound is the absolute-rate ceiling at deep-tail grid points:
// the closed-form expectation plus ~6 Poisson sigmas plus a floor of
// a few raw counts.
func tailBound(want float64, nBits int) float64 {
	lam := want * float64(nBits)
	return (lam + 6*math.Sqrt(lam) + 5) / float64(nBits)
}

func TestCalibrationSymbolVsWaveform(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo calibration sweep")
	}
	wav := NewWaveform()
	sym := NewSymbol()
	rng := rand.New(rand.NewSource(1700))
	for _, gp := range E3Grid() {
		ebn0 := rfmath.FromDB(gp.EbN0DB)
		want := gp.Mod.BER(ebn0)
		nBits := CalibBits(want)
		a, err := wav.MeasureBER(gp.Mod, ebn0, nBits, rng)
		if err != nil {
			t.Fatalf("%s@%gdB: waveform: %v", gp.Mod.Name, gp.EbN0DB, err)
		}
		b, err := sym.MeasureBER(gp.Mod, ebn0, nBits, rng)
		if err != nil {
			t.Fatalf("%s@%gdB: symbol: %v", gp.Mod.Name, gp.EbN0DB, err)
		}
		if want*float64(nBits) >= InformativeErrors {
			if z := ZTwoProportion(a, b); z > ZThreshold {
				t.Errorf("%s@%gdB: tier a %g vs tier b %g: z=%.1f > %.1f",
					gp.Mod.Name, gp.EbN0DB, a.Rate(), b.Rate(), z, ZThreshold)
			}
			continue
		}
		bound := tailBound(want, nBits)
		if a.Rate() > bound || b.Rate() > bound {
			t.Errorf("%s@%gdB: deep-tail rates a=%g b=%g exceed bound %g",
				gp.Mod.Name, gp.EbN0DB, a.Rate(), b.Rate(), bound)
		}
	}
}

func TestCalibrationBudgetVsSymbol(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo calibration sweep")
	}
	sym := NewSymbol()
	var bud Budget
	rng := rand.New(rand.NewSource(1701))
	for _, gp := range E3Grid() {
		ebn0 := rfmath.FromDB(gp.EbN0DB)
		cBER := bud.BER(gp.Mod, ebn0)
		nBits := CalibBits(cBER)
		b, err := sym.MeasureBER(gp.Mod, ebn0, nBits, rng)
		if err != nil {
			t.Fatalf("%s@%gdB: %v", gp.Mod.Name, gp.EbN0DB, err)
		}
		if cBER*float64(nBits) >= InformativeErrors {
			if z := ZAgainstModel(b.Errors, b.Bits, cBER); z > ZThreshold {
				t.Errorf("%s@%gdB: tier b %g vs tier c %g: z=%.1f > %.1f",
					gp.Mod.Name, gp.EbN0DB, b.Rate(), cBER, z, ZThreshold)
			}
			continue
		}
		if bound := tailBound(cBER, nBits); b.Rate() > bound {
			t.Errorf("%s@%gdB: deep-tail tier b rate %g exceeds bound %g",
				gp.Mod.Name, gp.EbN0DB, b.Rate(), bound)
		}
	}
}

// TestCalibrationFrameSuccessBudgetVsSymbol pins the frame-level
// outcome path: tier b's empirical frame success over repeated frames
// must agree with tier c's closed-form success probability at an
// operating point chosen to be informative (success probability well
// inside (0,1)).
func TestCalibrationFrameSuccessBudgetVsSymbol(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo calibration sweep")
	}
	sym := NewSymbol()
	var bud Budget
	r := mac.Rate{Mod: mac.ModQPSK(), BitRate: 20e6}
	const payload = 32
	airBits := airBitsFor(r, payload)
	// Pick the first grid SNR whose closed-form success probability is
	// informative; the grid is fixed, so the choice is deterministic.
	snr, p := math.NaN(), math.NaN()
	for _, db := range []float64{5, 6, 7, 8, 9, 10, 11, 12} {
		cand := rfmath.FromDB(db)
		if pp := bud.SuccessProb(r, cand, airBits); pp > 0.2 && pp < 0.8 {
			snr, p = cand, pp
			break
		}
	}
	if math.IsNaN(snr) {
		t.Fatal("no informative SNR point found — frame geometry changed?")
	}
	rng := rand.New(rand.NewSource(1702))
	const n = 4000
	ok := 0
	for i := 0; i < n; i++ {
		s, err := sym.FrameSuccess(r, snr, payload, rng)
		if err != nil {
			t.Fatal(err)
		}
		if s {
			ok++
		}
	}
	if z := ZAgainstModel(ok, n, p); z > ZThreshold {
		t.Fatalf("tier b frame success %d/%d vs tier c prob %.3f: z=%.1f > %.1f",
			ok, n, p, z, ZThreshold)
	}
}

// TestCalibrationFrameSuccessWaveformVsSymbol pins tier a's full-chain
// frame outcomes (sync, channel estimation, CRC) to tier b's in the
// region the ladder actually deploys tier a. The full chain carries a
// real ~1.5 dB implementation loss in the waterfall (noisy preamble
// sync and channel estimate), so the tiers genuinely diverge around
// 8-12 dB — that divergence is physics, not a calibration failure, and
// it is why Thresholds reserves the waveform tier for strong links.
// From 14 dB up, sync is reliable and the chains must agree.
func TestCalibrationFrameSuccessWaveformVsSymbol(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo calibration sweep")
	}
	wav := NewWaveform()
	sym := NewSymbol()
	r := mac.Rate{Mod: mac.ModQPSK(), BitRate: 20e6}
	const payload, n = 32, 400
	for _, db := range []float64{14, 16, 20} {
		snr := rfmath.FromDB(db)
		rng := rand.New(rand.NewSource(1703))
		okA, okB := 0, 0
		for i := 0; i < n; i++ {
			a, err := wav.FrameSuccess(r, snr, payload, rng)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sym.FrameSuccess(r, snr, payload, rng)
			if err != nil {
				t.Fatal(err)
			}
			if a {
				okA++
			}
			if b {
				okB++
			}
		}
		pa, pb := float64(okA)/n, float64(okB)/n
		se := math.Sqrt((pa*(1-pa) + pb*(1-pb)) / n)
		if se == 0 {
			if okA != okB {
				t.Fatalf("%g dB: degenerate disagreement: a=%d b=%d", db, okA, okB)
			}
			continue
		}
		if z := math.Abs(pa-pb) / se; z > ZThreshold {
			t.Fatalf("%g dB: tier a frame success %.3f vs tier b %.3f: z=%.1f > %.1f",
				db, pa, pb, z, ZThreshold)
		}
	}
}

// skewedSymbol deliberately mis-calibrates tier b by evaluating every
// measurement 1 dB optimistic — the stand-in for a broken curve the
// calibration suite must catch.
type skewedSymbol struct{ *Symbol }

func (s skewedSymbol) measure(mod mac.Modulation, ebn0 float64, nBits int, rng *rand.Rand) (int, int) {
	res, err := s.Symbol.MeasureBER(mod, ebn0*rfmath.FromDB(1), nBits, rng)
	if err != nil {
		panic(err)
	}
	return res.Errors, res.Bits
}

// TestCalibrationCatchesSkewedCurve is the negative control: the same
// statistic that passes the honest tiers must fail a curve skewed by
// 1 dB at an informative grid point. Without this test a silently
// weakened tolerance could let real calibration drift through.
func TestCalibrationCatchesSkewedCurve(t *testing.T) {
	skew := skewedSymbol{NewSymbol()}
	var bud Budget
	mod := mac.ModQPSK()
	ebn0 := rfmath.FromDB(4)
	cBER := bud.BER(mod, ebn0)
	nBits := CalibBits(cBER)
	if cBER*float64(nBits) < InformativeErrors {
		t.Fatal("chosen point is not informative — pick another")
	}
	rng := rand.New(rand.NewSource(1704))
	errs, n := skew.measure(mod, ebn0, nBits, rng)
	z := ZAgainstModel(errs, n, cBER)
	if z <= ZThreshold {
		t.Fatalf("skewed curve escaped calibration: z=%.1f <= %.1f (measured %g vs model %g)",
			z, ZThreshold, float64(errs)/float64(n), cBER)
	}
	// And the honest engine at the same point must pass, proving the
	// failure above is the skew, not the statistic.
	honest := NewSymbol()
	res, err := honest.MeasureBER(mod, ebn0, nBits, rand.New(rand.NewSource(1704)))
	if err != nil {
		t.Fatal(err)
	}
	if z := ZAgainstModel(res.Errors, res.Bits, cBER); z > ZThreshold {
		t.Fatalf("honest engine failed the calibration statistic: z=%.1f", z)
	}
}
