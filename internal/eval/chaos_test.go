package eval

import (
	"strings"
	"testing"

	"mmtag/internal/fault"
	"mmtag/internal/rfmath"
)

// TestChaosExperimentIDs pins the chaos sub-suite selection.
func TestChaosExperimentIDs(t *testing.T) {
	got := ChaosExperimentIDs()
	want := []string{"R1", "R2", "R3"}
	if len(got) != len(want) {
		t.Fatalf("ChaosExperimentIDs() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chaos IDs %v, want %v", got, want)
		}
	}
	all := strings.Join(ExperimentIDs(), ",")
	for _, id := range want {
		if !strings.Contains(all, id) {
			t.Fatalf("chaos experiment %s missing from the full suite", id)
		}
	}
}

// TestChaosBoundedRecovery runs one brownout churn scenario end to end
// and asserts the robustness SLOs the R2 table reports: starved tags
// are evicted, rediscovered when awake, and recovery latency stays
// bounded. This is the chaos-smoke anchor CI greps for.
func TestChaosBoundedRecovery(t *testing.T) {
	tb := (*Testbed)(nil).orDefault()
	plan := &fault.Plan{Brownout: &fault.BrownoutPlan{
		IncidentPowerW: rfmath.FromDBm(-9), PeriodS: 0.03,
	}}
	faulted, baseline, err := chaosRun(tb, 8, 42, plan, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	rec := faulted.Recovery
	if rec == nil {
		t.Fatal("faulted run missing RecoveryReport")
	}
	if rec.Evictions == 0 || rec.Rediscoveries == 0 {
		t.Fatalf("churn must evict and rediscover (evictions=%d rediscoveries=%d)",
			rec.Evictions, rec.Rediscoveries)
	}
	if rec.MaxRecoveryCycles > 256 {
		t.Fatalf("recovery latency unbounded: max %d cycles", rec.MaxRecoveryCycles)
	}
	if baseline.Recovery != nil {
		t.Fatal("baseline run must not carry a RecoveryReport")
	}
	if r := retention(faulted, baseline); r <= 0 || r > 1 {
		t.Fatalf("goodput retention %g out of (0,1]", r)
	}
}

// TestChaosTablesDeterministic re-runs R3 (the cheapest chaos table)
// and demands byte-identical renders — the fault-injected experiments
// obey the same seed-purity contract as the rest of the suite.
func TestChaosTablesDeterministic(t *testing.T) {
	a, err := R3AckLoss(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := R3AckLoss(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("R3 renders diverge:\n%s\n%s", a.Render(), b.Render())
	}
	if len(a.Rows) != 3 {
		t.Fatalf("R3 rows = %d, want 3", len(a.Rows))
	}
}
