package eval

import (
	"strconv"

	"mmtag/internal/link"
	"mmtag/internal/net"
)

// E22 exercises the tiered-fidelity scale path (net.ScaleDeployment):
// populations from 10k to 1M tags across tens to hundreds of APs, each
// tag simulated at the fidelity tier its association SNR earns. The
// small sweeps run the full ladder (waveform heads, symbol shoulder,
// link-budget tail); the 1M row pins the pure tier-c regime that makes
// the population size affordable.

// E22ScaleTiers regenerates the fidelity-ladder scaling table.
func E22ScaleTiers(seed int64) (*Table, error) { return e22ScaleTiers(Exec{}, seed) }

func e22ScaleTiers(x Exec, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E22",
		Title:  "Tiered-fidelity scaling: 10k-1M tags across AP grids",
		Header: []string{"tags", "aps", "grid", "tier_a", "tier_b", "tier_c", "frames_ok", "frames_lost", "delivery"},
		Notes: []string{"no paper counterpart: mmTag evaluates one AP; this projects the cell to warehouse-scale populations",
			"tier a/b/c = waveform / symbol Monte-Carlo / closed-form link budget, picked per tag by association SNR",
			"denser rows raise the fidelity floors so the waveform pool stays bounded (constant fidelity budget)",
			"the 1M row runs the link-budget tier only — the regime that keeps memory O(APs) and time O(tags)"},
	}
	// The 10k row runs the default ladder; the denser rows raise the
	// waveform (and at 100k the symbol) floor so the expensive-tier
	// population stays roughly constant as the deployment grows — the
	// compute budget per sweep is flat while coverage scales 100x.
	floors50k := link.Thresholds{WaveformMinDB: 40, SymbolMinDB: 15}
	floors100k := link.Thresholds{WaveformMinDB: 45, SymbolMinDB: 20}
	budgetOnly := link.AllBudget()
	rows := []struct {
		tags, aps int
		tiers     *link.Thresholds
	}{
		{10000, 16, nil},
		{50000, 64, &floors50k},
		{100000, 256, &floors100k},
		{1000000, 256, &budgetOnly},
	}
	err := x.runGrid(t, len(rows), func(shard int) ([]row, error) {
		rc := rows[shard]
		s, err := net.NewScale(net.ScaleConfig{
			APs:          rc.aps,
			CellM:        32,
			Tags:         rc.tags,
			Tiers:        rc.tiers,
			FramesPerTag: 2,
			Seed:         seed + int64(shard),
			Pool:         x.Pool,
		})
		if err != nil {
			return nil, err
		}
		rep, err := s.Run()
		if err != nil {
			return nil, err
		}
		total := rep.FramesOK + rep.FramesLost
		gridStr := strconv.Itoa(rep.Rows) + "x" + strconv.Itoa(rep.Cols)
		return []row{{rep.Tags, rep.APs, gridStr,
			rep.TierTags[link.TierWaveform], rep.TierTags[link.TierSymbol], rep.TierTags[link.TierBudget],
			rep.FramesOK, rep.FramesLost, float64(rep.FramesOK) / float64(total)}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
