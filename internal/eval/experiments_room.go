package eval

import (
	"fmt"
	"math"

	"mmtag/internal/channel"
	"mmtag/internal/geom"
	"mmtag/internal/rfmath"
)

// E18RoomClutter derives the AP's cancellation requirement from room
// geometry: first-order wall echoes (image-source model, plus TX-RX
// leakage at 30 dB isolation) set the static interference the reader
// must suppress so the mid-room tag echo clears the ADC's quantization
// floor with a 10 dB margin. The wall right behind the AP dominates the
// static floor in every room, while the tag echo weakens with room
// size — so bigger rooms *raise* the cancellation requirement.
func E18RoomClutter(tb *Testbed) (*Table, error) {
	tb = tb.orDefault()
	t := &Table{
		ID:    "E18",
		Title: "Cancellation requirement vs room geometry (tag at mid-room)",
		Header: []string{"room", "clutter_dBm", "echo_dBm", "c_over_e_dB",
			"cancel_adc8_dB", "cancel_adc12_dB"},
		Notes: []string{"AP against the west wall; includes 30 dB TX-RX isolation leakage; 10 dB decode margin"},
	}
	arr, err := tb.tagArray(0)
	if err != nil {
		return nil, err
	}
	apGain := rfmath.FromDB(tb.APGainDBi)
	rooms := []struct{ w, h float64 }{
		{4, 3}, {6, 4}, {10, 6}, {20, 12},
	}
	for _, rm := range rooms {
		room, err := geom.Rectangle(rm.w, rm.h, 2)
		if err != nil {
			return nil, err
		}
		apPos := geom.Point{X: 0.3, Y: rm.h / 2}
		var clutterW float64
		const wallReflLossDB = 3
		for _, e := range room.MonostaticEchoes(apPos) {
			clutterW += channel.WallEchoPowerW(tb.TxPowerW, apGain, tb.FreqHz,
				e.DistanceM, wallReflLossDB)
		}
		// TX-RX leakage at baseline isolation joins the static floor.
		clutterW += channel.SelfInterferencePowerW(tb.TxPowerW, 30)

		tagDist := geom.Dist(apPos, geom.Point{X: rm.w / 2, Y: rm.h / 2})
		echoW, err := tb.link(arr, tagDist, 0, 1).ReceivedPowerW()
		if err != nil {
			return nil, err
		}
		cOverE := rfmath.DB(clutterW / echoW)
		need := func(adcBits float64) float64 {
			const marginDB = 10
			dr := 6.02 * adcBits
			n := cOverE - (dr - marginDB)
			return math.Max(0, n)
		}
		t.AddRow(fmt.Sprintf("%gx%g m", rm.w, rm.h),
			rfmath.DBm(clutterW), rfmath.DBm(echoW), cOverE, need(8), need(12))
	}
	return t, nil
}
