package eval

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid with a header
// row, printable as aligned text or CSV.
type Table struct {
	ID     string // experiment ID, e.g. "E4"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row; values are stringified with %v unless
// they implement fmt.Stringer, and float64 gets 4 significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v != v: // NaN
		return "nan"
	}
	a := v
	if a < 0 {
		a = -a
	}
	if a >= 0.01 && a < 1e6 {
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
	}
	return fmt.Sprintf("%.3e", v)
}

// Render returns the aligned-text form of the table.
func (t *Table) Render() string {
	var b strings.Builder
	if t.ID != "" || t.Title != "" {
		fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV returns the comma-separated form (header first). Cells containing
// commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Column extracts a column by header name as float strings parsed back;
// it returns raw strings (callers parse as needed).
func (t *Table) Column(name string) []string {
	idx := -1
	for i, h := range t.Header {
		if h == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		if idx < len(row) {
			out = append(out, row[idx])
		}
	}
	return out
}
