package eval

import (
	"math/rand"

	"mmtag/internal/ap"
	"mmtag/internal/mac"
	"mmtag/internal/sim"
	"mmtag/internal/tag"
	"mmtag/internal/vanatta"
)

// buildFleet places n tags uniformly across the ±55° sector at
// distances drawn from [1.5, 5] m, returning the network.
func buildFleet(tb *Testbed, n int, seed int64) (*sim.Network, error) {
	apx, err := ap.New(ap.Config{
		FreqHz:        tb.FreqHz,
		TxPowerW:      tb.TxPowerW,
		NoiseFigureDB: tb.NoiseFigureDB,
	})
	if err != nil {
		return nil, err
	}
	net, err := sim.NewNetwork(apx, nil)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		arr, err := tb.tagArray(0)
		if err != nil {
			return nil, err
		}
		dev, err := tag.New(tag.Config{
			ID:             uint8(i + 1),
			Array:          arr,
			Modulation:     vanatta.QPSK(),
			SwitchRiseTime: tb.SwitchRiseTime,
		})
		if err != nil {
			return nil, err
		}
		az := -55.0 + 110.0*float64(i)/float64(maxI(n-1, 1))
		dist := 1.5 + rng.Float64()*3.5
		if err := net.AddTag(sim.Placement{
			Device:     dev,
			DistanceM:  dist,
			AzimuthRad: sim.Deg(az),
		}); err != nil {
			return nil, err
		}
	}
	return net, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E7MultiTag regenerates the multi-tag figure: aggregate goodput versus
// tag population under plain TDMA polling and under SDM grouping.
func E7MultiTag(tb *Testbed, seed int64) (*Table, error) {
	return e7MultiTag(Exec{}, tb, seed)
}

// e7MultiTag's trial grid is the population axis: each shard builds its
// own fleets and seeds its own runs, so shards share no state.
func e7MultiTag(x Exec, tb *Testbed, seed int64) (*Table, error) {
	tb = tb.orDefault()
	t := &Table{
		ID:    "E7",
		Title: "Aggregate goodput vs number of tags (TDMA vs SDM)",
		Header: []string{"tags", "discovered", "tdma_goodput_Mbps",
			"sdm_goodput_Mbps", "sdm_groups"},
	}
	grid := []int{1, 2, 4, 8, 16, 32}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		n := grid[shard]
		runOnce := func(sdm bool) (*sim.InventoryReport, error) {
			net, err := buildFleet(tb, n, seed)
			if err != nil {
				return nil, err
			}
			return sim.RunInventory(net, sim.InventoryConfig{
				Duration: 0.05,
				Seed:     seed + int64(n),
				SDM:      sdm,
			})
		}
		tdma, err := runOnce(false)
		if err != nil {
			return nil, err
		}
		sdm, err := runOnce(true)
		if err != nil {
			return nil, err
		}
		return []row{{n, tdma.Discovered, tdma.GoodputBps / 1e6,
			sdm.GoodputBps / 1e6, sdm.SDMGroups}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E10Discovery regenerates the discovery figure: beam-sweep inventory
// latency and completeness versus tag population.
func E10Discovery(tb *Testbed, seed int64) (*Table, error) {
	return e10Discovery(Exec{}, tb, seed)
}

func e10Discovery(x Exec, tb *Testbed, seed int64) (*Table, error) {
	tb = tb.orDefault()
	t := &Table{
		ID:     "E10",
		Title:  "Discovery latency vs tag population",
		Header: []string{"tags", "discovered", "latency_ms", "probes", "collisions"},
	}
	grid := []int{1, 2, 4, 8, 16, 32}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		n := grid[shard]
		net, err := buildFleet(tb, n, seed+77)
		if err != nil {
			return nil, err
		}
		rep, err := sim.RunInventory(net, sim.InventoryConfig{
			Duration: 0.001, // discovery-dominated run
			Seed:     seed + int64(n),
		})
		if err != nil {
			return nil, err
		}
		return []row{{n, rep.Discovered, rep.DiscoveryTime * 1e3,
			rep.MACStats.ProbesSent, rep.MACStats.Collisions}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E14DiscoveryAblation compares discovery strategies at several
// populations: the default fixed-window sweep, an undersized
// fixed-window ALOHA, and Q-adaptive ALOHA. Slots spent is the cost
// metric (each slot is air time).
func E14DiscoveryAblation(tb *Testbed, seed int64) (*Table, error) {
	return e14DiscoveryAblation(Exec{}, tb, seed)
}

func e14DiscoveryAblation(x Exec, tb *Testbed, seed int64) (*Table, error) {
	tb = tb.orDefault()
	t := &Table{
		ID:    "E14",
		Title: "Discovery strategy ablation (slots spent / tags found)",
		Header: []string{"tags", "fixed8_found", "fixed8_slots",
			"aloha2_found", "aloha2_slots", "adaptive_found", "adaptive_slots"},
		Notes: []string{"fixed8 = default sweep discovery; aloha2 = undersized fixed window; adaptive = Q-style window scaling"},
	}
	grid := []int{4, 16, 32}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		n := grid[shard]
		type outcome struct{ found, slots int }
		runWith := func(f func(st *mac.Station) outcome) (outcome, error) {
			net, err := buildFleet(tb, n, seed+5)
			if err != nil {
				return outcome{}, err
			}
			rng := rand.New(rand.NewSource(seed + int64(n)))
			st, err := mac.NewStation(mac.StationConfig{Beams: net.Codebook(sim.Deg(60))}, net, rng)
			if err != nil {
				return outcome{}, err
			}
			return f(st), nil
		}
		fixed, err := runWith(func(st *mac.Station) outcome {
			found := st.Discover()
			return outcome{found, st.Stats.DiscoverySlots}
		})
		if err != nil {
			return nil, err
		}
		aloha2, err := runWith(func(st *mac.Station) outcome {
			res := st.DiscoverAloha(mac.AlohaConfig{InitialSlots: 2, MaxRounds: 64})
			return outcome{res.Found, res.SlotsUsed}
		})
		if err != nil {
			return nil, err
		}
		adaptive, err := runWith(func(st *mac.Station) outcome {
			res := st.DiscoverAloha(mac.AlohaConfig{InitialSlots: 2, Adaptive: true, MaxRounds: 64})
			return outcome{res.Found, res.SlotsUsed}
		})
		if err != nil {
			return nil, err
		}
		return []row{{n, fixed.found, fixed.slots, aloha2.found, aloha2.slots,
			adaptive.found, adaptive.slots}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E15Blockage evaluates ride-through of shadowing episodes: a mobile
// tag parked at 4 m suffers a mid-run blockage of increasing one-way
// depth while the MAC adapts and retransmits. Delivery stays high until
// the episode exceeds even the robust rates' margin.
func E15Blockage(tb *Testbed, seed int64) (*Table, error) {
	return e15Blockage(Exec{}, tb, seed)
}

func e15Blockage(x Exec, tb *Testbed, seed int64) (*Table, error) {
	tb = tb.orDefault()
	t := &Table{
		ID:    "E15",
		Title: "Blockage ride-through (4 m, 40 ms episode, ARQ + adaptation)",
		Header: []string{"depth_dB_oneway", "delivery_ratio", "blocked_losses",
			"rate_changes", "goodput_Mbps"},
		Notes: []string{"a human body at mmWave costs 20-40 dB; ride-through relies on dropping down the rate ladder"},
	}
	grid := []float64{0, 10, 20, 30, 40, 50}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		depth := grid[shard]
		net, err := buildFleet(tb, 1, seed+3)
		if err != nil {
			return nil, err
		}
		// Pin the lone tag to 4 m straight ahead.
		id := net.Tags()[0]
		p, _ := net.Placement(id)
		p.DistanceM, p.AzimuthRad, p.OrientationRad = 4, 0, 0
		cfg := sim.MobileConfig{
			TagID: id,
			Trajectory: []sim.Waypoint{
				{Time: 0, DistanceM: 4},
				{Time: 0.12, DistanceM: 4},
			},
			StepS:       1e-3,
			RefineEvery: 5,
			Seed:        seed + int64(depth),
		}
		if depth > 0 {
			cfg.Blockage = []sim.BlockageEvent{{Start: 0.04, End: 0.08, AttenuationDB: depth}}
		}
		rep, err := sim.RunMobile(net, cfg)
		if err != nil {
			return nil, err
		}
		return []row{{depth, rep.DeliveryRatio(), rep.BlockedLost, rep.RateChanges,
			rep.GoodputBps / 1e6}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// A2SDMChains ablates the AP's RF-chain count: with 16 beam-separated
// tags, aggregate SDM goodput scales with the number of concurrent
// beams until the spatial-separation limit binds.
func A2SDMChains(tb *Testbed, seed int64) (*Table, error) {
	return a2SDMChains(Exec{}, tb, seed)
}

func a2SDMChains(x Exec, tb *Testbed, seed int64) (*Table, error) {
	tb = tb.orDefault()
	t := &Table{
		ID:     "A2",
		Title:  "SDM goodput vs AP RF-chain count (16 beam-separated tags)",
		Header: []string{"chains", "goodput_Mbps", "slots_per_cycle"},
	}
	grid := []int{1, 2, 4, 8}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		chains := grid[shard]
		net, err := buildFleet(tb, 16, seed+21)
		if err != nil {
			return nil, err
		}
		rep, err := sim.RunInventory(net, sim.InventoryConfig{
			Duration:  0.05,
			Seed:      seed,
			SDM:       true,
			SDMChains: chains,
		})
		if err != nil {
			return nil, err
		}
		return []row{{chains, rep.GoodputBps / 1e6, rep.SDMGroups}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
