// Package eval is the experiment harness that regenerates the paper-style
// evaluation: descriptive statistics, result tables, and the experiment
// implementations (E1-E21, A1-A2, R1-R3, T2-T3) indexed in DESIGN.md
// section 4. Each experiment is a
// pure function of its parameters and a seed, so benches and the CLI
// reproduce identical numbers.
package eval

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
}

// Summarize computes statistics over xs. An empty sample returns a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	s.P90 = Percentile(xs, 90)
	return s
}

// Percentile returns the p-th percentile (0-100) of xs by linear
// interpolation between order statistics. It panics for p outside
// [0, 100] and returns 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("eval: percentile %g outside [0,100]", p))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value float64
	Prob  float64
}

// CDF returns the empirical cumulative distribution of xs.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Prob: float64(i+1) / float64(len(sorted))}
	}
	return out
}
