package eval

import (
	"mmtag/internal/antenna"
	"mmtag/internal/frame"
	"mmtag/internal/mac"
	"mmtag/internal/rfmath"
	"mmtag/internal/vanatta"
)

// E1RetroPattern regenerates the beam-pattern figure: per-pass
// monostatic gain (dBi) versus incidence angle for Van Atta arrays of
// 4/8/16 elements, against same-aperture flat-plate and single-antenna
// baselines. The Van Atta trace stays nearly flat across the field of
// view; the baselines collapse.
func E1RetroPattern(tb *Testbed) (*Table, error) {
	tb = tb.orDefault()
	sizes := []int{4, 8, 16}
	arrays := make([]*vanatta.Array, len(sizes))
	for i, n := range sizes {
		a, err := tb.tagArray(n)
		if err != nil {
			return nil, err
		}
		arrays[i] = a
	}
	flat, err := vanatta.NewFlatPlate(nil, 8, 0.5)
	if err != nil {
		return nil, err
	}
	single := vanatta.NewSingleAntenna(nil)

	t := &Table{
		ID:    "E1",
		Title: "Retro-reflection gain vs incidence angle (per-pass dBi)",
		Header: []string{"angle_deg", "va4_dBi", "va8_dBi", "va16_dBi",
			"flat8_dBi", "single_dBi"},
		Notes: []string{"van atta holds gain across the element FOV; static reflectors collapse off broadside"},
	}
	for deg := -60.0; deg <= 60.0; deg += 2 {
		th := antenna.Deg(deg)
		t.AddRow(deg,
			rfmath.DB(arrays[0].MonostaticGain(th)),
			rfmath.DB(arrays[1].MonostaticGain(th)),
			rfmath.DB(arrays[2].MonostaticGain(th)),
			rfmath.DB(flat.MonostaticGain(th)),
			rfmath.DB(single.MonostaticGain(th)))
	}
	return t, nil
}

// E2LinkBudget regenerates the link-budget figure: tag incident power,
// echo power at the AP, and uplink SNR (10 MHz noise bandwidth) versus
// distance. Backscatter SNR falls 40 dB per decade.
func E2LinkBudget(tb *Testbed) (*Table, error) {
	tb = tb.orDefault()
	arr, err := tb.tagArray(0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E2",
		Title:  "Uplink link budget vs distance",
		Header: []string{"distance_m", "incident_dBm", "echo_dBm", "snr10MHz_dB"},
	}
	for _, d := range []float64{0.5, 1, 2, 3, 4, 5, 6, 8, 10, 12} {
		l := tb.link(arr, d, 0, 1)
		inc, err := l.TagIncidentPowerW()
		if err != nil {
			return nil, err
		}
		echo, err := l.ReceivedPowerW()
		if err != nil {
			return nil, err
		}
		t.AddRow(d, rfmath.DBm(inc), rfmath.DBm(echo), rfmath.DB(mustSNR(l, 10e6)))
	}
	return t, nil
}

// E4BERvsDistance regenerates the BER-versus-distance figure at a
// robust 10 Mb/s BPSK rate and an aggressive 100 Mb/s QPSK rate. The
// higher rate hits its BER wall several metres earlier.
func E4BERvsDistance(tb *Testbed) (*Table, error) {
	tb = tb.orDefault()
	arr, err := tb.tagArray(0)
	if err != nil {
		return nil, err
	}
	r10 := mac.Rate{Mod: mac.ModBPSK(), BitRate: 10e6}
	r100 := mac.Rate{Mod: mac.ModQPSK(), BitRate: 100e6}
	t := &Table{
		ID:     "E4",
		Title:  "Uplink BER vs distance (closed form at budget SNR)",
		Header: []string{"distance_m", "ber_bpsk10M", "ber_qpsk100M"},
	}
	for d := 1.0; d <= 10.0; d += 0.5 {
		ber := func(r mac.Rate) float64 {
			l := tb.link(arr, d, 0, r.Mod.Efficiency)
			return r.BERAt(mustSNR(l, r.SymbolRate()))
		}
		t.AddRow(d, ber(r10), ber(r100))
	}
	return t, nil
}

// E5Throughput regenerates the goodput-versus-distance figure under
// link adaptation: the selected rate steps down as the budget thins.
func E5Throughput(tb *Testbed) (*Table, error) {
	tb = tb.orDefault()
	arr, err := tb.tagArray(0)
	if err != nil {
		return nil, err
	}
	table := mac.DefaultRateTable()
	airBits := frame.AirBits(64, frame.Options{})
	t := &Table{
		ID:     "E5",
		Title:  "Adapted goodput vs distance (64 B frames, target PER 1%)",
		Header: []string{"distance_m", "rate", "goodput_Mbps", "per"},
	}
	for d := 1.0; d <= 10.0; d += 0.5 {
		snrFor := func(r mac.Rate) float64 {
			l := tb.link(arr, d, 0, r.Mod.Efficiency)
			return mustSNR(l, r.SymbolRate())
		}
		r, _, err := mac.PickRate(table, 0.01, airBits, snrFor)
		if err != nil {
			return nil, err
		}
		per := r.FramePER(snrFor(r), airBits)
		eff := r.Goodput() * (1 - per) / 1e6
		t.AddRow(d, r.String(), eff, per)
	}
	return t, nil
}

// A1RangeVsArraySize is the headline design ablation: the maximum
// operating range (where BER reaches 1e-3) as a function of the tag's
// Van Atta element count, for a robust and an aggressive rate. Each
// array doubling buys 6 dB of echo (two passes × 3 dB), i.e. ~1.41× of
// range on the 40 dB/decade backscatter slope.
func A1RangeVsArraySize(tb *Testbed) (*Table, error) {
	tb = tb.orDefault()
	rates := []mac.Rate{
		{Mod: mac.ModBPSK(), BitRate: 10e6},
		{Mod: mac.ModQPSK(), BitRate: 100e6},
	}
	t := &Table{
		ID:     "A1",
		Title:  "Max range (BER 1e-3) vs tag array size",
		Header: []string{"elements", "range_bpsk10M_m", "range_qpsk100M_m"},
		Notes:  []string{"each array doubling buys 6 dB two-way echo ≈ 1.41x range"},
	}
	maxRange := func(arr vanatta.Reflector, r mac.Rate) float64 {
		// Bisect the monotone BER-vs-distance curve.
		lo, hi := 0.1, 200.0
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			l := tb.link(arr, mid, 0, r.Mod.Efficiency)
			if r.BERAt(mustSNR(l, r.SymbolRate())) < 1e-3 {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}
	for _, n := range []int{4, 8, 16, 32} {
		arr, err := tb.tagArray(n)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, maxRange(arr, rates[0]), maxRange(arr, rates[1]))
	}
	return t, nil
}

// E6AngleRobustness regenerates the angle-robustness figure: uplink SNR
// and BER versus the tag's incidence angle for the Van Atta tag against
// flat-plate and single-antenna baselines (BPSK 10 Mb/s at 3 m).
func E6AngleRobustness(tb *Testbed) (*Table, error) {
	tb = tb.orDefault()
	arr, err := tb.tagArray(0)
	if err != nil {
		return nil, err
	}
	flat, err := vanatta.NewFlatPlate(nil, tb.TagElements, 0.5)
	if err != nil {
		return nil, err
	}
	single := vanatta.NewSingleAntenna(nil)
	r := mac.Rate{Mod: mac.ModBPSK(), BitRate: 10e6}
	const d = 3.0
	t := &Table{
		ID:    "E6",
		Title: "SNR and BER vs tag incidence angle (BPSK 10 Mb/s, 3 m)",
		Header: []string{"angle_deg", "snr_va_dB", "snr_flat_dB", "snr_single_dB",
			"ber_va", "ber_flat"},
	}
	for deg := -60.0; deg <= 60.0; deg += 2 {
		th := antenna.Deg(deg)
		snr := func(refl vanatta.Reflector) float64 {
			return mustSNR(tb.link(refl, d, th, r.Mod.Efficiency), r.SymbolRate())
		}
		sVA, sFlat, sSingle := snr(arr), snr(flat), snr(single)
		t.AddRow(deg, rfmath.DB(sVA), rfmath.DB(sFlat), rfmath.DB(sSingle),
			r.BERAt(sVA), r.BERAt(sFlat))
	}
	return t, nil
}
