package eval

import (
	"fmt"

	"mmtag/internal/channel"
	"mmtag/internal/rfmath"
	"mmtag/internal/vanatta"
)

// Testbed collects the shared parameters of the reconstructed
// evaluation setup (see DESIGN.md, "Reconstructed system parameters").
type Testbed struct {
	// FreqHz is the carrier (24 GHz ISM).
	FreqHz float64
	// TxPowerW is the AP transmit power (20 dBm).
	TxPowerW float64
	// APGainDBi is the AP antenna gain used in link-budget experiments
	// (20 dBi horn-class).
	APGainDBi float64
	// NoiseFigureDB is the AP receiver noise figure.
	NoiseFigureDB float64
	// TagElements is the default tag array size.
	TagElements int
	// InsertionLossDB is the tag trace/switch network loss.
	InsertionLossDB float64
	// SwitchRiseTime is the tag switch 10-90% rise time.
	SwitchRiseTime float64
	// PolarizationLossDB and MiscLossDB absorb the implementation
	// losses a real deployment sees (alignment, CFO residue, connector
	// and matching losses); together they pull the idealized budget
	// down to the ~8 m ranges the reconstructed system reports.
	PolarizationLossDB float64
	MiscLossDB         float64
}

// DefaultTestbed returns the reconstruction defaults.
func DefaultTestbed() *Testbed {
	return &Testbed{
		FreqHz:             24e9,
		TxPowerW:           rfmath.FromDBm(20),
		APGainDBi:          20,
		NoiseFigureDB:      5,
		TagElements:        8,
		InsertionLossDB:    1.5,
		SwitchRiseTime:     2e-9,
		PolarizationLossDB: 3,
		MiscLossDB:         6,
	}
}

func (tb *Testbed) orDefault() *Testbed {
	if tb == nil {
		return DefaultTestbed()
	}
	return tb
}

// tagArray builds the testbed's Van Atta array with n elements.
func (tb *Testbed) tagArray(n int) (*vanatta.Array, error) {
	if n == 0 {
		n = tb.TagElements
	}
	return vanatta.New(vanatta.Config{Elements: n, InsertionLossDB: tb.InsertionLossDB})
}

// link builds the monostatic budget for a reflector at distance d and
// tag incidence angle, with modulation efficiency eff.
func (tb *Testbed) link(refl vanatta.Reflector, d, tagAngle, eff float64) *channel.Link {
	return &channel.Link{
		FreqHz:             tb.FreqHz,
		TxPowerW:           tb.TxPowerW,
		APGain:             rfmath.FromDB(tb.APGainDBi),
		Reflector:          refl,
		TagAngleRad:        tagAngle,
		DistanceM:          d,
		ModEfficiency:      eff,
		NoiseFigureDB:      tb.NoiseFigureDB,
		PolarizationLossDB: tb.PolarizationLossDB,
		MiscLossDB:         tb.MiscLossDB,
	}
}

// mustSNR returns the linear SNR or panics: testbed-internal budgets are
// always valid by construction, so an error is a bug in the harness.
func mustSNR(l *channel.Link, bandwidth float64) float64 {
	snr, err := l.SNR(bandwidth)
	if err != nil {
		panic(fmt.Sprintf("eval: testbed budget failed: %v", err))
	}
	return snr
}
