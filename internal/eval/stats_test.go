package eval

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std %g", s.Std)
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty summary must be zero")
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 || one.P90 != 7 {
		t.Fatalf("single summary %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if p := Percentile(xs, 0); p != 10 {
		t.Fatalf("p0 %g", p)
	}
	if p := Percentile(xs, 100); p != 40 {
		t.Fatalf("p100 %g", p)
	}
	if p := Percentile(xs, 50); math.Abs(p-25) > 1e-12 {
		t.Fatalf("p50 %g", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Percentile never leaves [min, max] and is monotone in p.
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				return true
			}
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(raw, pa), Percentile(raw, pb)
		sorted := append([]float64{}, raw...)
		sort.Float64s(sorted)
		return va <= vb+1e-9 && va >= sorted[0]-1e-9 && vb <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatal("length")
	}
	if pts[0].Value != 1 || pts[2].Value != 3 {
		t.Fatal("ordering")
	}
	if pts[2].Prob != 1 || math.Abs(pts[0].Prob-1.0/3) > 1e-12 {
		t.Fatalf("probs %+v", pts)
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	tab.AddRow(1.5, "x,y")
	tab.AddRow(0.000012, 7)
	text := tab.Render()
	if !strings.Contains(text, "== T: demo ==") || !strings.Contains(text, "note: a note") {
		t.Fatalf("render:\n%s", text)
	}
	if !strings.Contains(text, "1.5") {
		t.Fatal("float formatting")
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("csv quoting:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatal("csv header")
	}
	// Tiny floats switch to scientific notation.
	if !strings.Contains(csv, "e-05") {
		t.Fatalf("scientific formatting missing:\n%s", csv)
	}
}

func TestTableColumn(t *testing.T) {
	tab := &Table{Header: []string{"x", "y"}}
	tab.AddRow(1, 2)
	tab.AddRow(3, 4)
	col := tab.Column("y")
	if len(col) != 2 || col[0] != "2" || col[1] != "4" {
		t.Fatalf("column %v", col)
	}
	if tab.Column("zzz") != nil {
		t.Fatal("missing column must be nil")
	}
}
