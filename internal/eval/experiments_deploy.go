package eval

import (
	"math"
	"sort"
	"strconv"

	"mmtag/internal/geom"
	"mmtag/internal/net"
	"mmtag/internal/rfmath"
)

// The deployment experiments (E19-E21) exercise internal/net, the
// multi-AP layer: throughput scaling with AP count, handoff latency
// under mobility, and edge-tag interference versus channel reuse. They
// have no counterpart figure in the paper — mmTag's evaluation stops at
// one AP — so the tables are forward-looking projections of the
// reconstructed cell, not reproductions.

// E19APScaling regenerates the AP-scaling table: a fixed 48-tag
// population served by growing AP grids.
func E19APScaling(seed int64) (*Table, error) { return e19APScaling(Exec{}, seed) }

func e19APScaling(x Exec, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E19",
		Title:  "Aggregate throughput vs AP count (48 tags, spatial sharding)",
		Header: []string{"aps", "grid", "area_m2", "discovered", "goodput_Mbps", "frames_ok"},
		Notes: []string{"no paper counterpart: mmTag evaluates one AP; this projects the reconstructed cell to a tiled deployment",
			"fixed population; goodput grows with APs because cells poll concurrently and tags sit closer to their AP"},
	}
	grid := []int{1, 2, 4, 9}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		aps := grid[shard]
		d, err := net.New(net.Config{
			APs:      aps,
			Tags:     48,
			Epochs:   2,
			Duration: 0.03,
			Seed:     seed + int64(aps),
			Pool:     x.Pool,
		})
		if err != nil {
			return nil, err
		}
		rep, err := d.Run()
		if err != nil {
			return nil, err
		}
		area := float64(rep.Rows*rep.Cols) * 8 * 8
		gridStr := strconv.Itoa(rep.Rows) + "x" + strconv.Itoa(rep.Cols)
		return []row{{aps, gridStr, area, rep.Discovered,
			rep.AggregateGoodputBps / 1e6, rep.FramesOK}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E20HandoffLatency regenerates the handoff table: latency distribution
// and poll-duplication cost of mobility across a 2x2 grid.
func E20HandoffLatency(seed int64) (*Table, error) { return e20HandoffLatency(Exec{}, seed) }

func e20HandoffLatency(x Exec, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E20",
		Title:  "Handoff latency under mobility (2x2 grid, 32 tags, half mobile)",
		Header: []string{"metric", "value"},
		Notes: []string{"no paper counterpart: latency = base 2 ms + uniform jitter < 2 ms per handoff, drawn from the tag's derived stream",
			"dup_polls estimates source-AP polls wasted in the stale-roster window"},
	}
	err := x.runGrid(t, 1, func(int) ([]row, error) {
		d, err := net.New(net.Config{
			APs:        4,
			Tags:       32,
			MobileFrac: 0.5,
			Epochs:     8,
			Duration:   0.04,
			Seed:       seed,
			Pool:       x.Pool,
		})
		if err != nil {
			return nil, err
		}
		rep, err := d.Run()
		if err != nil {
			return nil, err
		}
		lat := rep.HandoffLatencies()
		sort.Float64s(lat)
		health := 0
		for _, h := range rep.Handoffs {
			if h.Reason == "health" {
				health++
			}
		}
		rows := []row{
			{"handoffs", len(lat)},
			{"health_triggered", health},
			{"dup_polls", rep.DuplicatePolls},
		}
		for _, p := range []float64{0.10, 0.50, 0.90, 1.00} {
			rows = append(rows, row{pctLabel(p), percentile(lat, p) * 1e3})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E21EdgeReuse regenerates the reuse table: SINR and BER of a cell-edge
// probe as the co-channel reuse spacing grows.
func E21EdgeReuse(seed int64) (*Table, error) { return e21EdgeReuse(Exec{}, seed) }

func e21EdgeReuse(x Exec, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E21",
		Title:  "Edge-tag SINR/BER vs channel reuse distance (1x5 row, 60 tags)",
		Header: []string{"reuse_cells", "interferers", "sinr_dB", "ber_qpsk"},
		Notes: []string{"no paper counterpart: probe tag 0.5 m inside cell 2's west edge; neighbours' tags backscatter into its AP",
			"reuse N leaves only every Nth cell co-channel, so the interference floor decays with N"},
	}
	rate := net.ProbeRate()
	grid := []int{1, 2, 3}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		reuse := grid[shard]
		d, err := net.New(net.Config{
			APs:          5,
			Cols:         5,
			Tags:         60,
			InterfRangeM: 20,
			ReuseCells:   reuse,
			Seed:         seed + 11,
		})
		if err != nil {
			return nil, err
		}
		probe := geom.Point{X: 16.5, Y: 3}
		sinrDB, interferers, err := d.ProbeSINR(2, probe, rate)
		if err != nil {
			return nil, err
		}
		ebn0 := rfmath.EbN0FromSNR(rfmath.FromDB(sinrDB), rate.BitRate, rate.SymbolRate())
		return []row{{reuse, interferers, sinrDB, rfmath.BERQPSK(ebn0)}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// percentile returns the p-quantile of sorted (ascending) xs by the
// nearest-rank method; 0 for an empty slice.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// pctLabel renders "p50_ms" style metric names.
func pctLabel(p float64) string {
	if p >= 1 {
		return "max_ms"
	}
	return "p" + strconv.Itoa(int(p*100)) + "_ms"
}
