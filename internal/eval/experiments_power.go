package eval

import (
	"math"

	"mmtag/internal/rfmath"
	"mmtag/internal/tag"
)

// E8EnergyPerBit regenerates the energy figure: tag energy per bit
// versus data rate for OOK and QPSK switching, with the active-radio
// baseline for scale. The defaults land near the attested ~2.4 nJ/bit
// at 10 Mb/s OOK.
func E8EnergyPerBit(tb *Testbed) (*Table, error) {
	_ = tb // the energy model is rate- not link-dependent
	p := tag.DefaultPowerModel()
	active := tag.DefaultActiveRadio()
	t := &Table{
		ID:    "E8",
		Title: "Tag energy per bit vs data rate",
		Header: []string{"rate_Mbps", "ook_nJ_per_bit", "qpsk_nJ_per_bit",
			"active_radio_nJ_per_bit", "advantage_x"},
		Notes: []string{"calibrated to ~2.4 nJ/bit at 10 Mb/s OOK (the figure attested for mmTag)"},
	}
	for _, mbps := range []float64{1, 2, 5, 10, 20, 40, 60, 100} {
		r := mbps * 1e6
		ook := p.EnergyPerBitJ(r, 1)
		qpsk := p.EnergyPerBitJ(r, 2)
		act := active.EnergyPerBitJ(r)
		t.AddRow(mbps, ook*1e9, qpsk*1e9, act*1e9, act/ook)
	}
	return t, nil
}

// E13BatteryFree evaluates the battery-free extension: at each distance
// the incident carrier power fixes the harvested budget, which sets the
// sustainable duty cycle and average uplink rate for a storage-buffered
// tag bursting at 10 Mb/s.
func E13BatteryFree(tb *Testbed) (*Table, error) {
	tb = tb.orDefault()
	arr, err := tb.tagArray(0)
	if err != nil {
		return nil, err
	}
	h := tag.DefaultHarvester()
	p := tag.DefaultPowerModel()
	t := &Table{
		ID:    "E13",
		Title: "Battery-free operation vs distance (harvest-limited, 10 Mb/s bursts)",
		Header: []string{"distance_m", "incident_dBm", "harvest_uW",
			"duty_cycle", "sustained_kbps", "charge_s_100uF"},
		Notes: []string{"extension experiment: rectifier 35% peak, -20 dBm sensitivity, 50/50 power split"},
	}
	for _, d := range []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4, 6} {
		l := tb.link(arr, d, 0, 1)
		inc, err := l.TagIncidentPowerW()
		if err != nil {
			return nil, err
		}
		harvest := h.HarvestedPowerW(inc)
		duty := h.DutyCycle(inc, p.BackscatterPowerW(10e6), p.SleepPowerW())
		rate := h.SustainedBitRate(inc, p, 10e6, 1)
		charge := h.TimeToCharge(inc, 100e-6, 1.8, 3.3)
		chargeCell := formatFloat(charge)
		if math.IsInf(charge, 1) {
			chargeCell = "inf"
		}
		t.AddRow(d, rfmath.DBm(inc), harvest*1e6, duty, rate/1e3, chargeCell)
	}
	return t, nil
}

// T2PowerBreakdown regenerates the power table: per-component draw in
// each operating mode.
func T2PowerBreakdown() (*Table, error) {
	p := tag.DefaultPowerModel()
	p.IncludeMCU = true
	t := &Table{
		ID:    "T2",
		Title: "Tag power breakdown by mode (mW, MCU included)",
		Header: []string{"mode", "switch_static", "switch_dynamic",
			"envelope_det", "mcu", "total"},
	}
	addMode := func(name string, b tag.Breakdown) {
		t.AddRow(name, b.SwitchStaticW*1e3, b.SwitchDynamicW*1e3,
			b.EnvelopeW*1e3, b.MCUW*1e3, b.TotalW*1e3)
	}
	addMode("listen", p.ListenBreakdown())
	addMode("backscatter@1Msym", p.BackscatterBreakdown(1e6))
	addMode("backscatter@10Msym", p.BackscatterBreakdown(10e6))
	addMode("backscatter@50Msym", p.BackscatterBreakdown(50e6))
	t.AddRow("sleep", 0.0, 0.0, 0.0, 0.0, p.SleepPowerW()*1e3)
	return t, nil
}

// T3EnergyCompare regenerates the comparison table: tag vs active
// mmWave radio energy per bit across rates.
func T3EnergyCompare() (*Table, error) {
	p := tag.DefaultPowerModel()
	active := tag.DefaultActiveRadio()
	t := &Table{
		ID:     "T3",
		Title:  "Energy per bit: backscatter tag vs active mmWave radio",
		Header: []string{"rate_Mbps", "tag_nJ_per_bit", "active_nJ_per_bit", "advantage_x"},
	}
	for _, mbps := range []float64{1, 10, 40, 100} {
		r := mbps * 1e6
		adv := tag.EnergyAdvantage(p, active, r, 1)
		t.AddRow(mbps, p.EnergyPerBitJ(r, 1)*1e9, active.EnergyPerBitJ(r)*1e9, adv)
	}
	return t, nil
}
