package eval

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"mmtag/internal/ap"
	"mmtag/internal/channel"
	"mmtag/internal/dsp"
	"mmtag/internal/fastrand"
	"mmtag/internal/frame"
	"mmtag/internal/phy"
	"mmtag/internal/rfmath"
	"mmtag/internal/vanatta"
)

// This file is the demodulation-throughput accounting behind the
// BENCH "tput" suite (tags·symbols per second per core): the exact
// tag·symbol workload of the throughput-gated experiments, and the
// batched-demodulator microbenchmark. The workload counts reuse the
// experiments' own grid definitions (e3Mods, e9CancelGrid, ...), so
// the denominators cannot drift from what the experiments process.
//
// DESIGN.md: section 11 (batched demodulation).

// Shared workload definitions for E9/E11 (E3's live beside the
// experiment in experiments_phy.go).
var (
	e9CancelGrid = []float64{0, 10, 20, 30, 40, 50, 60}
	e9Payload    = []byte("cancellation sweep payload")
	e11RateGrid  = []float64{1, 5, 10, 20, 50, 100, 150, 200}
	e11Payload   = []byte("switch limit sweep payload")
)

// frameSymbols returns how many channel symbols one uncoded data frame
// with the given payload occupies for a constellation — preamble plus
// mapped frame bits, exactly the modulated symbol count of E9/E11.
func frameSymbols(c *phy.Constellation, payload []byte) (int64, error) {
	f := &frame.Frame{Type: frame.TypeData, TagID: 1, Payload: payload}
	bits, err := f.EncodeBits(frame.Options{})
	if err != nil {
		return 0, err
	}
	bps := c.BitsPerSymbol()
	return 63 + int64((len(bits)+bps-1)/bps), nil
}

// TagSymbolWorkload returns the number of tag·symbols one regeneration
// of the experiment demodulates (or slices, for the symbol-level E3) —
// the denominator of its "tput" suite row.
func TagSymbolWorkload(id string) (int64, error) {
	switch id {
	case "E3":
		var total int64
		for _, m := range e3Mods {
			c, err := phy.NewConstellation(m.name, m.set.States())
			if err != nil {
				return 0, err
			}
			bps := c.BitsPerSymbol()
			for _, db := range e3EbN0DB {
				nBits := e3BitBudget(m.theory(rfmath.FromDB(db)))
				total += int64((nBits + bps - 1) / bps)
			}
		}
		return total, nil
	case "E9":
		set := vanatta.OOK()
		c, err := phy.NewConstellation(set.Name(), set.States())
		if err != nil {
			return 0, err
		}
		syms, err := frameSymbols(c, e9Payload)
		if err != nil {
			return 0, err
		}
		return syms * int64(len(e9CancelGrid)), nil
	case "E11":
		set := vanatta.BPSK()
		c, err := phy.NewConstellation(set.Name(), set.States())
		if err != nil {
			return 0, err
		}
		syms, err := frameSymbols(c, e11Payload)
		if err != nil {
			return 0, err
		}
		return syms * int64(len(e11RateGrid)), nil
	}
	return 0, fmt.Errorf("eval: no tag-symbol workload defined for %s", id)
}

// BatchMicro is one measurement of the fused batch demodulator: lanes
// concurrent tag waveforms swept through ap.Demodulator.DemodulateBatch.
type BatchMicro struct {
	Lanes      int    // waveforms per pass
	TagSymbols int64  // tag·symbols demodulated per pass
	NsPass     int64  // min wall ns per pass
	AllocsPass uint64 // steady-state allocs per pass (escaping frames)
	BytesPass  uint64 // steady-state bytes per pass
}

// RunBatchMicro measures DemodulateBatch over a batch of lanes OOK
// frame waveforms at a comfortably decodable SNR: reps timed groups of
// passes, keeping the minimum. Steady-state allocation figures come
// from MemStats deltas across a group, so pool warm-up amortizes out;
// what remains is the decoded frames escaping to the results.
func RunBatchMicro(lanes, reps int, seed int64) (*BatchMicro, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("eval: batch micro needs >= 1 lane, got %d", lanes)
	}
	if reps < 1 {
		reps = 1
	}
	const sps = 8
	set := vanatta.OOK()
	c, err := phy.NewConstellation(set.Name(), set.States())
	if err != nil {
		return nil, err
	}
	dem, err := ap.NewDemodulator(c, 63, frame.Options{})
	if err != nil {
		return nil, err
	}
	f := &frame.Frame{Type: frame.TypeData, TagID: 1, Payload: e9Payload}
	bits, err := f.EncodeBits(frame.Options{})
	if err != nil {
		return nil, err
	}
	symbols := append(dem.PreambleSymbolIndices(), c.MapBits(nil, bits)...)
	mod, err := vanatta.NewModulator(set, 10e6, 10e6*sps, 0)
	if err != nil {
		return nil, err
	}
	var rx dsp.Batch
	rx.Reset(lanes, len(symbols)*sps)
	for l := 0; l < lanes; l++ {
		mod.Reset()
		wave := mod.Waveform(rx.LaneCap(l)[:0], symbols)
		rng := fastrand.New(seed + int64(l))
		channel.AWGNFast(rng, wave, 1e-4)
		rx.SetLaneLen(l, len(wave))
	}

	res := dem.DemodulateBatch(&rx, sps)
	for l, r := range res {
		if !r.OK() {
			return nil, fmt.Errorf("eval: batch micro lane %d failed to decode: %v", l, r.Err)
		}
	}

	// Each timed group runs enough passes to dominate timer noise;
	// allocation deltas over the group average out pool refills.
	const passes = 8
	m := &BatchMicro{
		Lanes:      lanes,
		TagSymbols: int64(lanes * len(symbols)),
		NsPass:     math.MaxInt64,
		AllocsPass: math.MaxUint64,
		BytesPass:  math.MaxUint64,
	}
	var ms runtime.MemStats
	for r := 0; r < reps; r++ {
		runtime.GC()
		dem.DemodulateBatchTo(res, &rx, sps) // refill pools GC just drained
		runtime.ReadMemStats(&ms)
		mallocs, bytes := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		for p := 0; p < passes; p++ {
			res = dem.DemodulateBatchTo(res, &rx, sps)
		}
		ns := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&ms)
		if per := ns / passes; per < m.NsPass {
			m.NsPass = per
		}
		if per := (ms.Mallocs - mallocs) / passes; per < m.AllocsPass {
			m.AllocsPass = per
		}
		if per := (ms.TotalAlloc - bytes) / passes; per < m.BytesPass {
			m.BytesPass = per
		}
	}
	return m, nil
}
