package eval

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// parseF parses a rendered table cell back into a float.
func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", s, err)
	}
	return v
}

func column(t *testing.T, tab *Table, name string) []float64 {
	t.Helper()
	raw := tab.Column(name)
	if raw == nil {
		t.Fatalf("table %s has no column %q (header %v)", tab.ID, name, tab.Header)
	}
	out := make([]float64, len(raw))
	for i, s := range raw {
		out[i] = parseF(t, s)
	}
	return out
}

func TestE1Shape(t *testing.T) {
	tab, err := E1RetroPattern(nil)
	if err != nil {
		t.Fatal(err)
	}
	angles := column(t, tab, "angle_deg")
	va8 := column(t, tab, "va8_dBi")
	va16 := column(t, tab, "va16_dBi")
	flat := column(t, tab, "flat8_dBi")
	mid := len(angles) / 2 // broadside row
	// Gain doubles (3 dB) per array doubling at broadside.
	if d := va16[mid] - va8[mid]; d < 2.9 || d > 3.1 {
		t.Fatalf("16 vs 8 element gain delta %g dB, want 3", d)
	}
	// Van Atta at 40° within 3.2 dB of broadside; flat plate down > 15 dB.
	idx40 := -1
	for i, a := range angles {
		if a == 40 {
			idx40 = i
		}
	}
	if idx40 < 0 {
		t.Fatal("no 40 degree row")
	}
	if drop := va8[mid] - va8[idx40]; drop > 3.2 {
		t.Fatalf("van atta drop at 40° = %g dB", drop)
	}
	if drop := flat[mid] - flat[idx40]; drop < 15 {
		t.Fatalf("flat plate drop at 40° = %g dB, want > 15", drop)
	}
}

func TestE2Shape(t *testing.T) {
	tab, err := E2LinkBudget(nil)
	if err != nil {
		t.Fatal(err)
	}
	d := column(t, tab, "distance_m")
	snr := column(t, tab, "snr10MHz_dB")
	echo := column(t, tab, "echo_dBm")
	// Monotone decreasing, ~40 dB/decade: compare d=1 and d=10 rows.
	var i1, i10 int
	for i := range d {
		if d[i] == 1 {
			i1 = i
		}
		if d[i] == 10 {
			i10 = i
		}
	}
	if slope := echo[i1] - echo[i10]; slope < 39.9 || slope > 40.1 {
		t.Fatalf("echo slope %g dB/decade", slope)
	}
	// SNR must still be workable at 8 m for the 10 MHz bandwidth.
	for i := range d {
		if d[i] == 8 && snr[i] < 5 {
			t.Fatalf("SNR at 8 m only %g dB; link budget miscalibrated", snr[i])
		}
	}
}

func TestE3MeasurementsTrackTheory(t *testing.T) {
	tab, err := E3BERvsEbN0(7)
	if err != nil {
		t.Fatal(err)
	}
	ratios := column(t, tab, "ratio")
	meas := column(t, tab, "ber_measured")
	for i, r := range ratios {
		if meas[i] == 0 {
			continue // no errors observed at the deepest point; acceptable
		}
		if r < 0.5 || r > 2 {
			t.Fatalf("row %d: measured/theory ratio %g outside [0.5, 2]", i, r)
		}
	}
}

func TestE4Shape(t *testing.T) {
	tab, err := E4BERvsDistance(nil)
	if err != nil {
		t.Fatal(err)
	}
	b10 := column(t, tab, "ber_bpsk10M")
	b100 := column(t, tab, "ber_qpsk100M")
	for i := range b10 {
		// The fast rate is always at least as error-prone.
		if b100[i] < b10[i]-1e-18 {
			t.Fatalf("row %d: 100M BER %g below 10M BER %g", i, b100[i], b10[i])
		}
		// Both grow with distance.
		if i > 0 && (b10[i] < b10[i-1]-1e-18 || b100[i] < b100[i-1]-1e-18) {
			t.Fatalf("BER not monotone in distance at row %d", i)
		}
	}
	// Near range: clean; far range: the fast rate has failed badly.
	if b10[0] > 1e-9 {
		t.Fatalf("BPSK 10M at 1 m BER %g, want ~0", b10[0])
	}
	if b100[len(b100)-1] < 1e-3 {
		t.Fatalf("QPSK 100M at 10 m BER %g, want a wall", b100[len(b100)-1])
	}
}

func TestE5Shape(t *testing.T) {
	tab, err := E5Throughput(nil)
	if err != nil {
		t.Fatal(err)
	}
	good := column(t, tab, "goodput_Mbps")
	// Non-increasing with distance (steps down as adaptation backs off).
	for i := 1; i < len(good); i++ {
		if good[i] > good[i-1]+1e-9 {
			t.Fatalf("goodput increased with distance at row %d", i)
		}
	}
	if good[0] < 50 {
		t.Fatalf("short-range goodput %g Mb/s, want the top rates", good[0])
	}
	if good[len(good)-1] >= good[0] {
		t.Fatal("no adaptation visible")
	}
}

func TestE6Shape(t *testing.T) {
	tab, err := E6AngleRobustness(nil)
	if err != nil {
		t.Fatal(err)
	}
	angles := column(t, tab, "angle_deg")
	va := column(t, tab, "snr_va_dB")
	flat := column(t, tab, "snr_flat_dB")
	var mid, off int
	for i, a := range angles {
		if a == 0 {
			mid = i
		}
		if a == 30 {
			off = i
		}
	}
	// Equal-aperture structures are comparable at broadside (flat plate
	// has no switch loss, so it can be slightly ahead).
	if d := va[mid] - flat[mid]; d > 1 || d < -3 {
		t.Fatalf("broadside VA-flat delta %g dB", d)
	}
	// At 30° the Van Atta must dominate by tens of dB.
	if va[off]-flat[off] < 20 {
		t.Fatalf("van atta advantage at 30° only %g dB", va[off]-flat[off])
	}
}

func TestE7Shape(t *testing.T) {
	tab, err := E7MultiTag(nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	tags := column(t, tab, "tags")
	disc := column(t, tab, "discovered")
	tdma := column(t, tab, "tdma_goodput_Mbps")
	sdm := column(t, tab, "sdm_goodput_Mbps")
	for i := range tags {
		if disc[i] < tags[i]*0.9 {
			t.Fatalf("only %g of %g tags discovered", disc[i], tags[i])
		}
		if tdma[i] <= 0 {
			t.Fatalf("zero TDMA goodput at %g tags", tags[i])
		}
	}
	// With many spread tags SDM must beat TDMA.
	last := len(tags) - 1
	if sdm[last] <= tdma[last] {
		t.Fatalf("SDM %g <= TDMA %g at %g tags", sdm[last], tdma[last], tags[last])
	}
}

func TestE8Shape(t *testing.T) {
	tab, err := E8EnergyPerBit(nil)
	if err != nil {
		t.Fatal(err)
	}
	rate := column(t, tab, "rate_Mbps")
	ook := column(t, tab, "ook_nJ_per_bit")
	adv := column(t, tab, "advantage_x")
	for i := range rate {
		if i > 0 && ook[i] > ook[i-1]+1e-9 {
			t.Fatal("energy per bit must fall with rate")
		}
		if adv[i] < 10 {
			t.Fatalf("advantage %gx at %g Mb/s, want >= 10x", adv[i], rate[i])
		}
		if rate[i] == 10 && (ook[i] < 2.0 || ook[i] > 2.8) {
			t.Fatalf("calibration point %g nJ/bit at 10 Mb/s, want ~2.4", ook[i])
		}
	}
}

func TestE9Shape(t *testing.T) {
	tab, err := E9Cancellation(nil, 13)
	if err != nil {
		t.Fatal(err)
	}
	cancel := column(t, tab, "cancel_dB")
	decoded := tab.Column("decoded")
	// Weak cancellation fails, strong succeeds, with a single crossover.
	if decoded[0] != "false" {
		t.Fatal("0 dB cancellation should fail through a 12-bit ADC")
	}
	if decoded[len(decoded)-1] != "true" {
		t.Fatal("60 dB cancellation should decode")
	}
	seenTrue := false
	for i, d := range decoded {
		if d == "true" {
			seenTrue = true
		} else if seenTrue {
			t.Fatalf("decode regressed at cancellation %g dB", cancel[i])
		}
	}
}

func TestE10Shape(t *testing.T) {
	tab, err := E10Discovery(nil, 17)
	if err != nil {
		t.Fatal(err)
	}
	tags := column(t, tab, "tags")
	disc := column(t, tab, "discovered")
	lat := column(t, tab, "latency_ms")
	for i := range tags {
		if disc[i] < tags[i] {
			t.Fatalf("discovery incomplete: %g of %g", disc[i], tags[i])
		}
	}
	// Latency grows with population.
	if lat[len(lat)-1] <= lat[0] {
		t.Fatal("discovery latency should grow with tags")
	}
}

func TestE11Shape(t *testing.T) {
	tabs, err := E11SwitchLimit(nil, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("E11 returns %d tables", len(tabs))
	}
	evm := column(t, tabs[0], "evm")
	settled := column(t, tabs[0], "settled_fraction")
	// EVM grows and settling falls as the rate climbs.
	if evm[len(evm)-1] <= evm[0] {
		t.Fatal("EVM should grow with symbol rate")
	}
	for i := 1; i < len(settled); i++ {
		if settled[i] > settled[i-1]+1e-9 {
			t.Fatal("settled fraction must fall with rate")
		}
	}
	maxRate := column(t, tabs[1], "max_symbol_rate_MHz")
	for i := 1; i < len(maxRate); i++ {
		if maxRate[i] >= maxRate[i-1] {
			t.Fatal("max rate must fall with rise time")
		}
	}
}

func TestE12Shape(t *testing.T) {
	tab, err := E12CodedPER(23)
	if err != nil {
		t.Fatal(err)
	}
	snr := column(t, tab, "esn0_dB")
	unc := column(t, tab, "per_uncoded")
	cod := column(t, tab, "per_coded_hard")
	soft := column(t, tab, "per_coded_soft")
	// The soft receiver never loses to the hard one on identical noise.
	for i := range soft {
		if soft[i] > cod[i]+1e-9 {
			t.Fatalf("soft PER %g worse than hard %g at %g dB", soft[i], cod[i], snr[i])
		}
	}
	// Coded never worse; at some mid SNR strictly better.
	betterSomewhere := false
	for i := range snr {
		if cod[i] > unc[i]+1e-9 {
			t.Fatalf("coded PER %g worse than uncoded %g at %g dB", cod[i], unc[i], snr[i])
		}
		if unc[i]-cod[i] > 0.3 {
			betterSomewhere = true
		}
	}
	if !betterSomewhere {
		t.Fatal("no visible coding gain")
	}
	// Low SNR: both bad. High SNR: both good.
	if unc[0] < 0.9 {
		t.Fatalf("uncoded PER at %g dB is %g, want ~1", snr[0], unc[0])
	}
	if cod[len(cod)-1] > 0.05 {
		t.Fatalf("coded PER at %g dB is %g, want ~0", snr[len(snr)-1], cod[len(cod)-1])
	}
}

func TestE13Shape(t *testing.T) {
	tab, err := E13BatteryFree(nil)
	if err != nil {
		t.Fatal(err)
	}
	duty := column(t, tab, "duty_cycle")
	rate := column(t, tab, "sustained_kbps")
	harvest := column(t, tab, "harvest_uW")
	// Monotone non-increasing with distance; continuous up close,
	// starved far out.
	for i := 1; i < len(duty); i++ {
		if duty[i] > duty[i-1]+1e-12 || rate[i] > rate[i-1]+1e-9 || harvest[i] > harvest[i-1]+1e-9 {
			t.Fatalf("battery-free metrics not monotone at row %d", i)
		}
	}
	// Harvest cannot power the 22 mW switch network continuously at any
	// range — battery-free operation is duty-cycled, per real rectenna
	// budgets: a fraction of a percent up close, starved beyond a few m.
	if duty[0] <= 1e-3 || duty[0] >= 0.1 {
		t.Fatalf("duty cycle at 0.25 m is %g, want a fraction of a percent", duty[0])
	}
	if rate[0] < 1 { // at least ~kb/s sustained up close
		t.Fatalf("sustained rate at 0.25 m is %g kb/s", rate[0])
	}
	if duty[len(duty)-1] != 0 {
		t.Fatalf("duty cycle at 6 m is %g, want starved", duty[len(duty)-1])
	}
}

func TestE14Shape(t *testing.T) {
	tab, err := E14DiscoveryAblation(nil, 29)
	if err != nil {
		t.Fatal(err)
	}
	tags := column(t, tab, "tags")
	fixedFound := column(t, tab, "fixed8_found")
	adaptFound := column(t, tab, "adaptive_found")
	aloha2Slots := column(t, tab, "aloha2_slots")
	adaptSlots := column(t, tab, "adaptive_slots")
	for i := range tags {
		if fixedFound[i] < tags[i] || adaptFound[i] < tags[i] {
			t.Fatalf("row %d: discovery incomplete", i)
		}
	}
	// At the largest population the adaptive window must beat the
	// undersized fixed ALOHA window on slots.
	last := len(tags) - 1
	if adaptSlots[last] >= aloha2Slots[last] {
		t.Fatalf("adaptive (%g slots) should beat undersized fixed (%g)",
			adaptSlots[last], aloha2Slots[last])
	}
}

func TestA1Shape(t *testing.T) {
	tab, err := A1RangeVsArraySize(nil)
	if err != nil {
		t.Fatal(err)
	}
	elements := column(t, tab, "elements")
	r10 := column(t, tab, "range_bpsk10M_m")
	r100 := column(t, tab, "range_qpsk100M_m")
	for i := range elements {
		// Robust rate always reaches further than the aggressive one.
		if r10[i] <= r100[i] {
			t.Fatalf("row %d: 10M range %g <= 100M range %g", i, r10[i], r100[i])
		}
		if i > 0 {
			// Each doubling multiplies range by ~sqrt(2) (6 dB two-way
			// on a 40 dB/decade slope).
			ratio := r10[i] / r10[i-1]
			if math.Abs(ratio-math.Sqrt2) > 0.05 {
				t.Fatalf("doubling ratio %g, want ~1.414", ratio)
			}
		}
	}
	// The default 8-element tag at 100 Mb/s reaches ~8 m.
	if r100[1] < 7 || r100[1] > 10 {
		t.Fatalf("8-element 100M range %g m, want ~8", r100[1])
	}
}

func TestE15Shape(t *testing.T) {
	tab, err := E15Blockage(nil, 31)
	if err != nil {
		t.Fatal(err)
	}
	depth := column(t, tab, "depth_dB_oneway")
	delivery := column(t, tab, "delivery_ratio")
	// No blockage: essentially perfect delivery.
	if delivery[0] < 0.99 {
		t.Fatalf("clear-air delivery %g", delivery[0])
	}
	// Moderate blockage (20 dB) ridden through by adaptation.
	for i, d := range depth {
		if d == 20 && delivery[i] < 0.9 {
			t.Fatalf("20 dB blockage delivery %g, want ride-through", delivery[i])
		}
		// Very deep blockage costs real losses.
		if d == 50 && delivery[i] > 0.9 {
			t.Fatalf("50 dB blockage delivery %g, should visibly hurt", delivery[i])
		}
	}
}

func TestE16Shape(t *testing.T) {
	tab, err := E16Multipath(37)
	if err != nil {
		t.Fatal(err)
	}
	onetap := column(t, tab, "ser_onetap")
	mmse := column(t, tab, "ser_mmse")
	// The equalizer never loses to the one-tap receiver, and at the
	// lowest K (last row) it must rescue an otherwise broken link.
	for i := range onetap {
		if mmse[i] > onetap[i]+1e-12 {
			t.Fatalf("row %d: MMSE SER %g worse than one-tap %g", i, mmse[i], onetap[i])
		}
	}
	last := len(onetap) - 1
	if onetap[last] < 0.05 {
		t.Fatalf("low-K one-tap SER %g; channel too gentle to show the effect", onetap[last])
	}
	if mmse[last] > onetap[last]/5 {
		t.Fatalf("MMSE SER %g does not rescue the low-K link (one-tap %g)", mmse[last], onetap[last])
	}
}

func TestE17Shape(t *testing.T) {
	tab, err := E17Interference(nil, 43)
	if err != nil {
		t.Fatal(err)
	}
	sinr := column(t, tab, "tag_sinr_dB")
	good := column(t, tab, "goodput_Mbps")
	// SINR monotone non-increasing as the interferer strengthens.
	for i := 1; i < len(sinr); i++ {
		if sinr[i] > sinr[i-1]+1e-9 {
			t.Fatalf("SINR rose with interference at row %d", i)
		}
	}
	// The strongest interferer visibly hurts goodput vs the baseline.
	if good[len(good)-1] >= good[0]*0.8 {
		t.Fatalf("50 dBm interferer goodput %g vs clean %g: no visible impact",
			good[len(good)-1], good[0])
	}
}

func TestE18Shape(t *testing.T) {
	tab, err := E18RoomClutter(nil)
	if err != nil {
		t.Fatal(err)
	}
	cOverE := column(t, tab, "c_over_e_dB")
	c8 := column(t, tab, "cancel_adc8_dB")
	c12 := column(t, tab, "cancel_adc12_dB")
	for i := range cOverE {
		// Clutter always dominates the tag echo.
		if cOverE[i] < 20 {
			t.Fatalf("row %d: clutter only %g dB above echo", i, cOverE[i])
		}
		// A 12-bit ADC always needs less analog cancellation.
		if c12[i] > c8[i] {
			t.Fatalf("row %d: 12-bit needs more cancellation than 8-bit", i)
		}
	}
	// The near wall keeps the static floor roughly constant while the
	// mid-room tag echo weakens with room size, so the cancellation
	// requirement grows monotonically.
	for i := 1; i < len(c8); i++ {
		if c8[i] < c8[i-1]-1e-9 {
			t.Fatalf("8-bit requirement fell with room size at row %d", i)
		}
	}
}

func TestA2Shape(t *testing.T) {
	tab, err := A2SDMChains(nil, 47)
	if err != nil {
		t.Fatal(err)
	}
	chains := column(t, tab, "chains")
	good := column(t, tab, "goodput_Mbps")
	for i := 1; i < len(chains); i++ {
		if good[i] < good[i-1]-1e-9 {
			t.Fatalf("goodput fell when adding RF chains at row %d", i)
		}
	}
	// Going 1 -> 4 chains must multiply goodput substantially.
	if good[2] < good[0]*2 {
		t.Fatalf("4 chains (%g) should at least double 1 chain (%g)", good[2], good[0])
	}
}

func TestT2T3Shapes(t *testing.T) {
	t2, err := T2PowerBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 5 {
		t.Fatalf("T2 rows %d", len(t2.Rows))
	}
	totals := column(t, t2, "total")
	// Backscatter at 50 Msym must dominate 1 Msym.
	if totals[3] <= totals[1] {
		t.Fatal("fast switching must cost more")
	}
	t3, err := T3EnergyCompare()
	if err != nil {
		t.Fatal(err)
	}
	adv := column(t, t3, "advantage_x")
	for _, a := range adv {
		if a < 10 {
			t.Fatalf("advantage %g < 10x", a)
		}
	}
}

func TestAllTables(t *testing.T) {
	tabs, err := AllTables(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 30 { // E1..E22 (+E11b) + A1 + A2 + T2 + T3 + R1..R3
		t.Fatalf("AllTables returned %d tables", len(tabs))
	}
	seen := map[string]bool{}
	for _, tab := range tabs {
		if tab.ID == "" || len(tab.Rows) == 0 {
			t.Fatalf("table %q empty", tab.Title)
		}
		if seen[tab.ID] {
			t.Fatalf("duplicate table ID %s", tab.ID)
		}
		seen[tab.ID] = true
		if strings.TrimSpace(tab.Render()) == "" {
			t.Fatal("render empty")
		}
	}
}

func TestE22Shape(t *testing.T) {
	tab, err := E22ScaleTiers(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("E22 has %d rows, want 4", len(tab.Rows))
	}
	tags := column(t, tab, "tags")
	a := column(t, tab, "tier_a")
	b := column(t, tab, "tier_b")
	c := column(t, tab, "tier_c")
	delivery := column(t, tab, "delivery")
	for i := range tags {
		if a[i]+b[i]+c[i] != tags[i] {
			t.Fatalf("row %d: tier split %g+%g+%g != %g tags", i, a[i], b[i], c[i], tags[i])
		}
		if delivery[i] <= 0 || delivery[i] >= 1 {
			t.Fatalf("row %d: delivery %g not in (0,1)", i, delivery[i])
		}
	}
	// The ladder rows must exercise every tier; the 1M row is pinned to
	// the link-budget tier only.
	for i := 0; i < 3; i++ {
		if a[i] == 0 || b[i] == 0 || c[i] == 0 {
			t.Fatalf("row %d: ladder not fully exercised (a=%g b=%g c=%g)", i, a[i], b[i], c[i])
		}
	}
	last := len(tags) - 1
	if tags[last] != 1e6 || a[last] != 0 || b[last] != 0 || c[last] != 1e6 {
		t.Fatalf("1M row should be pure tier c, got a=%g b=%g c=%g", a[last], b[last], c[last])
	}
}
