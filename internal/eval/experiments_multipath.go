package eval

import (
	"math/rand"

	"mmtag/internal/channel"
	"mmtag/internal/phy"
	"mmtag/internal/rfmath"
)

// E16Multipath evaluates uplink robustness to small-scale multipath:
// QPSK symbols through Rician channels of decreasing K-factor (more
// scattering), received with (a) the baseline one-tap gain corrector
// and (b) channel sounding + MMSE linear equalization. Strongly Rician
// links (narrow mmWave beams) barely need the equalizer; low-K channels
// break the one-tap receiver and the equalizer restores them.
func E16Multipath(seed int64) (*Table, error) {
	return e16Multipath(Exec{}, seed)
}

// e16Multipath's trial grid is the K-factor axis: each shard seeds its
// own RNG from its K value (the historical per-row seeding) and
// averages its realizations privately.
func e16Multipath(x Exec, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "Multipath robustness: symbol error rate vs Rician K (QPSK, 25 dB SNR)",
		Header: []string{"k_dB", "ser_onetap", "ser_mmse", "delay_spread_samp"},
		Notes:  []string{"3 scattered taps over 3 symbols; sounding uses a 511-symbol PN header; MMSE has 21 taps"},
	}
	const nData = 2000
	const trainLen = 511
	const realizations = 8
	grid := []float64{20, 10, 6, 3, 0}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		kDB := grid[shard]
		c := phy.NewQPSK()
		rng := rand.New(rand.NewSource(seed + int64(kDB*10)))
		k := rfmath.FromDB(kDB)
		var serOneSum, serMMSESum, spreadSum float64
		for rz := 0; rz < realizations; rz++ {
			taps, err := channel.RicianTaps(rng, k, 3, 3)
			if err != nil {
				return nil, err
			}
			// Training + data through the channel.
			train := make([]complex128, trainLen)
			for i := range train {
				train[i] = complex(float64(rng.Intn(2)*2-1), 0)
			}
			bits := phy.RandomBits(rng, 2*nData)
			data := c.Modulate(nil, c.MapBits(nil, bits))
			tx := append(append([]complex128{}, train...), data...)
			rx := channel.ApplyTaps(tx, taps)
			channel.AWGN(rng, rx, rfmath.FromDB(-25))

			// (a) one-tap receiver: data-aided gain from the training.
			g, err := phy.EstimateGain(rx[:trainLen], train)
			if err != nil {
				return nil, err
			}
			oneTap := phy.ScaleRotate(rx[trainLen:], g)
			serOneSum += symbolErrors(c, oneTap, data)

			// (b) sound + MMSE equalize.
			h, err := phy.EstimateCIR(rx, train, 6)
			if err != nil {
				return nil, err
			}
			const nTaps = 21
			delay := (len(h) + nTaps) / 2
			w, err := phy.DesignEqualizer(h, nTaps, delay, rfmath.FromDB(-25))
			if err != nil {
				return nil, err
			}
			eq := phy.Equalize(rx, w, delay)
			serMMSESum += symbolErrors(c, eq[trainLen:], data)

			spread, err := phy.RMSDelaySpread(h, 1)
			if err != nil {
				return nil, err
			}
			spreadSum += spread
		}
		return []row{{kDB, serOneSum / realizations, serMMSESum / realizations,
			spreadSum / realizations}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// symbolErrors slices rx against the known tx points (interior region,
// away from filter edges) and returns the symbol error rate.
func symbolErrors(c *phy.Constellation, rx, tx []complex128) float64 {
	n := len(tx)
	if len(rx) < n {
		n = len(rx)
	}
	const guard = 30
	errs, total := 0, 0
	for i := guard; i < n-guard; i++ {
		total++
		if c.Nearest(rx[i]) != c.Nearest(tx[i]) {
			errs++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(errs) / float64(total)
}
