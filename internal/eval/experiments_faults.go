package eval

// Chaos-soak experiments R1-R3: the MAC/network stack under the
// deterministic fault-injection substrate (internal/fault). Each row
// compares a faulted inventory run against its unfaulted baseline at
// the same seed, so "retention" columns isolate the fault's cost from
// the scenario's intrinsic difficulty. Like every experiment here, the
// trial grids shard across the pool and every fault draws from
// seed-derived streams, so the tables are byte-identical at any
// -parallel width.

import (
	"mmtag/internal/fault"
	"mmtag/internal/rfmath"
	"mmtag/internal/sim"
)

// chaosRun executes one faulted inventory run plus its unfaulted
// baseline over a freshly built fleet of n tags and returns both
// reports.
func chaosRun(tb *Testbed, n int, seed int64, plan *fault.Plan, duration float64) (faulted, baseline *sim.InventoryReport, err error) {
	runOnce := func(p *fault.Plan) (*sim.InventoryReport, error) {
		net, err := buildFleet(tb, n, seed+9)
		if err != nil {
			return nil, err
		}
		return sim.RunInventory(net, sim.InventoryConfig{
			Duration: duration,
			Seed:     seed + int64(n),
			Faults:   p,
		})
	}
	if baseline, err = runOnce(nil); err != nil {
		return nil, nil, err
	}
	if faulted, err = runOnce(plan); err != nil {
		return nil, nil, err
	}
	return faulted, baseline, nil
}

// retention is the faulted/baseline goodput ratio (1 when the baseline
// produced nothing).
func retention(faulted, baseline *sim.InventoryReport) float64 {
	if baseline.GoodputBps == 0 {
		return 1
	}
	return faulted.GoodputBps / baseline.GoodputBps
}

// R1BurstBlockage soaks an 8-tag fleet in Gilbert-Elliott burst
// blockage of increasing depth: the health machine keeps blocked tags
// polled (or backed off), link adaptation drops down the ladder
// (degraded picks), and goodput retention quantifies the cost.
func R1BurstBlockage(tb *Testbed, seed int64) (*Table, error) {
	return r1BurstBlockage(Exec{}, tb, seed)
}

func r1BurstBlockage(x Exec, tb *Testbed, seed int64) (*Table, error) {
	tb = tb.orDefault()
	t := &Table{
		ID:    "R1",
		Title: "Chaos soak: Gilbert-Elliott burst blockage (8 tags, 50 ms)",
		Header: []string{"depth_dB", "delivery_ratio", "degraded_picks",
			"blockage_flips", "evictions", "goodput_retention"},
		Notes: []string{"mean dwells 20 ms clear / 5 ms blocked; retention = faulted/baseline goodput at the same seed"},
	}
	grid := []float64{10, 20, 30, 40}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		depth := grid[shard]
		plan := &fault.Plan{Blockage: &fault.BlockagePlan{AttenuationDB: depth}}
		faulted, baseline, err := chaosRun(tb, 8, seed+int64(depth), plan, 0.05)
		if err != nil {
			return nil, err
		}
		rec := faulted.Recovery
		return []row{{depth, rec.DeliveryRatio, rec.DegradedPicks,
			rec.Faults.BlockageTransitions, rec.Evictions,
			retention(faulted, baseline)}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// R2TagChurn soaks the fleet in population churn: permanent tag death
// and energy-harvest brownout. The health machine must evict
// unreachable tags and the periodic rediscovery sweeps must recover the
// ones that come back (brownout) while leaving the dead evicted.
func R2TagChurn(tb *Testbed, seed int64) (*Table, error) {
	return r2TagChurn(Exec{}, tb, seed)
}

func r2TagChurn(x Exec, tb *Testbed, seed int64) (*Table, error) {
	tb = tb.orDefault()
	t := &Table{
		ID:    "R2",
		Title: "Chaos soak: tag churn — permanent death and brownout (8 tags, 150 ms)",
		Header: []string{"scenario", "tags_dead", "evictions", "rediscoveries",
			"mean_recovery_cycles", "delivery_ratio", "goodput_retention"},
		Notes: []string{"death: per-tag exponential lifetime, mean 20 ms; brownout: harvest-limited duty cycling at the given incident power, 30 ms period"},
	}
	scenarios := []struct {
		name string
		plan *fault.Plan
	}{
		{"death p=0.5", &fault.Plan{Death: &fault.DeathPlan{Prob: 0.5, MeanLifetimeS: 0.02}}},
		{"death p=0.9", &fault.Plan{Death: &fault.DeathPlan{Prob: 0.9, MeanLifetimeS: 0.02}}},
		{"brownout -10dBm", &fault.Plan{Brownout: &fault.BrownoutPlan{IncidentPowerW: rfmath.FromDBm(-10), PeriodS: 0.03}}},
		{"brownout -9dBm", &fault.Plan{Brownout: &fault.BrownoutPlan{IncidentPowerW: rfmath.FromDBm(-9), PeriodS: 0.03}}},
	}
	err := x.runGrid(t, len(scenarios), func(shard int) ([]row, error) {
		sc := scenarios[shard]
		faulted, baseline, err := chaosRun(tb, 8, seed, sc.plan, 0.15)
		if err != nil {
			return nil, err
		}
		rec := faulted.Recovery
		return []row{{sc.name, rec.TagsDead, rec.Evictions, rec.Rediscoveries,
			rec.MeanRecoveryCycles, rec.DeliveryRatio,
			retention(faulted, baseline)}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// R3AckLoss soaks the AP→tag feedback path: delivered frames whose ACK
// is lost are retransmitted by the tag and absorbed by the AP's
// duplicate detection, so information is never double-counted while the
// retry budget pays for the wasted air time.
func R3AckLoss(tb *Testbed, seed int64) (*Table, error) {
	return r3AckLoss(Exec{}, tb, seed)
}

func r3AckLoss(x Exec, tb *Testbed, seed int64) (*Table, error) {
	tb = tb.orDefault()
	t := &Table{
		ID:    "R3",
		Title: "Chaos soak: AP-to-tag ACK loss (8 tags, 50 ms)",
		Header: []string{"ack_loss_prob", "delivery_ratio", "acks_dropped",
			"duplicates_absorbed", "retransmissions", "goodput_retention"},
		Notes: []string{"duplicates are counted once as information; retention falls with the air time the retransmissions burn"},
	}
	grid := []float64{0.1, 0.3, 0.5}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		prob := grid[shard]
		plan := &fault.Plan{AckLoss: &fault.AckLossPlan{Prob: prob}}
		faulted, baseline, err := chaosRun(tb, 8, seed+int64(shard)*7, plan, 0.05)
		if err != nil {
			return nil, err
		}
		rec := faulted.Recovery
		return []row{{prob, rec.DeliveryRatio, rec.Faults.AcksDropped,
			rec.DuplicateFrames, faulted.MACStats.Retransmissions,
			retention(faulted, baseline)}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
