package eval

import (
	"context"
	"fmt"
	"testing"

	"mmtag/internal/par"
)

// TestParallelMatchesSerial is the harness's central guarantee: for
// every experiment in the suite, the sharded run is bit-identical to
// the serial run at every pool size, for more than one seed. A
// violation means some shard read state (usually RNG state) owned by a
// sibling.
func TestParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{42, 7} {
		serialTabs, err := RunSuite(Exec{}, nil, seed)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		serialByID := map[string]string{}
		for _, tab := range serialTabs {
			serialByID[tab.ID] = tab.Render()
		}
		for _, workers := range []int{2, 8} {
			t.Run(fmt.Sprintf("seed%d/workers%d", seed, workers), func(t *testing.T) {
				pool := par.New(par.Config{Workers: workers})
				defer pool.Close()
				parTabs, err := RunSuite(Exec{Pool: pool}, nil, seed)
				if err != nil {
					t.Fatal(err)
				}
				if len(parTabs) != len(serialTabs) {
					t.Fatalf("parallel produced %d tables, serial %d", len(parTabs), len(serialTabs))
				}
				for i, tab := range parTabs {
					if want := serialTabs[i].ID; tab.ID != want {
						t.Fatalf("table %d is %s, serial had %s: suite order not preserved", i, tab.ID, want)
					}
					if got, want := tab.Render(), serialByID[tab.ID]; got != want {
						t.Errorf("experiment %s diverges at %d workers:\n--- serial ---\n%s--- parallel ---\n%s",
							tab.ID, workers, want, got)
					}
				}
			})
		}
	}
}

// TestRunExperimentMatchesSuite checks the single-experiment entry
// point returns the same tables the full suite does, serial and
// sharded.
func TestRunExperimentMatchesSuite(t *testing.T) {
	const seed = 42
	suite, err := RunSuite(Exec{}, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]string{}
	for _, tab := range suite {
		byID[tab.ID] = tab.Render()
	}
	pool := par.New(par.Config{Workers: 4})
	defer pool.Close()
	for _, id := range []string{"E7", "e12", "E11", "T3"} { // case-insensitive
		tabs, err := RunExperiment(Exec{Pool: pool}, id, nil, seed)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tab := range tabs {
			if got, want := tab.Render(), byID[tab.ID]; got != want {
				t.Errorf("%s: single-experiment run diverges from suite", tab.ID)
			}
		}
	}
	if _, err := RunExperiment(Exec{}, "E99", nil, seed); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

// TestSuiteCancellation checks a cancelled context aborts the suite
// with ctx.Err() instead of hanging or returning partial tables.
func TestSuiteCancellation(t *testing.T) {
	pool := par.New(par.Config{Workers: 2})
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSuite(Exec{Pool: pool, Ctx: ctx}, nil, 42); err == nil {
		t.Fatal("cancelled suite must error")
	}
}

// TestExperimentIDsMatchSuiteOrder pins the registry order to the
// historical report order.
func TestExperimentIDsMatchSuiteOrder(t *testing.T) {
	want := []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18",
		"E19", "E20", "E21", "E22",
		"A1", "A2", "R1", "R2", "R3", "T2", "T3",
	}
	got := ExperimentIDs()
	if len(got) != len(want) {
		t.Fatalf("ExperimentIDs() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ID %d = %s, want %s", i, got[i], want[i])
		}
	}
}
