package eval

import (
	"fmt"
	"strings"
)

// Experiment is one runnable entry of the evaluation suite. Run must be
// a pure function of (x, tb, seed): no experiment reads another's
// state, which is what lets the suite itself shard across a pool.
type Experiment struct {
	ID  string
	Run func(x Exec, tb *Testbed, seed int64) ([]*Table, error)
}

// one adapts a single-table experiment to the registry shape.
func one(run func(x Exec, tb *Testbed, seed int64) (*Table, error)) func(Exec, *Testbed, int64) ([]*Table, error) {
	return func(x Exec, tb *Testbed, seed int64) ([]*Table, error) {
		t, err := run(x, tb, seed)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Experiments returns the full suite in report order (the order
// AllTables has always used). The slice is freshly allocated; callers
// may reorder or filter it.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", one(func(x Exec, tb *Testbed, _ int64) (*Table, error) { return E1RetroPattern(tb) })},
		{"E2", one(func(x Exec, tb *Testbed, _ int64) (*Table, error) { return E2LinkBudget(tb) })},
		{"E3", one(func(x Exec, _ *Testbed, seed int64) (*Table, error) { return e3BERvsEbN0(x, seed) })},
		{"E4", one(func(x Exec, tb *Testbed, _ int64) (*Table, error) { return E4BERvsDistance(tb) })},
		{"E5", one(func(x Exec, tb *Testbed, _ int64) (*Table, error) { return E5Throughput(tb) })},
		{"E6", one(func(x Exec, tb *Testbed, _ int64) (*Table, error) { return E6AngleRobustness(tb) })},
		{"E7", one(func(x Exec, tb *Testbed, seed int64) (*Table, error) { return e7MultiTag(x, tb, seed) })},
		{"E8", one(func(x Exec, tb *Testbed, _ int64) (*Table, error) { return E8EnergyPerBit(tb) })},
		{"E9", one(func(x Exec, tb *Testbed, seed int64) (*Table, error) { return e9Cancellation(x, tb, seed) })},
		{"E10", one(func(x Exec, tb *Testbed, seed int64) (*Table, error) { return e10Discovery(x, tb, seed) })},
		{"E11", func(x Exec, tb *Testbed, seed int64) ([]*Table, error) { return e11SwitchLimit(x, tb, seed) }},
		{"E12", one(func(x Exec, _ *Testbed, seed int64) (*Table, error) { return e12CodedPER(x, seed) })},
		{"E13", one(func(x Exec, tb *Testbed, _ int64) (*Table, error) { return E13BatteryFree(tb) })},
		{"E14", one(func(x Exec, tb *Testbed, seed int64) (*Table, error) { return e14DiscoveryAblation(x, tb, seed) })},
		{"E15", one(func(x Exec, tb *Testbed, seed int64) (*Table, error) { return e15Blockage(x, tb, seed) })},
		{"E16", one(func(x Exec, _ *Testbed, seed int64) (*Table, error) { return e16Multipath(x, seed) })},
		{"E17", one(func(x Exec, tb *Testbed, seed int64) (*Table, error) { return e17Interference(x, tb, seed) })},
		{"E18", one(func(x Exec, tb *Testbed, _ int64) (*Table, error) { return E18RoomClutter(tb) })},
		{"E19", one(func(x Exec, _ *Testbed, seed int64) (*Table, error) { return e19APScaling(x, seed) })},
		{"E20", one(func(x Exec, _ *Testbed, seed int64) (*Table, error) { return e20HandoffLatency(x, seed) })},
		{"E21", one(func(x Exec, _ *Testbed, seed int64) (*Table, error) { return e21EdgeReuse(x, seed) })},
		{"E22", one(func(x Exec, _ *Testbed, seed int64) (*Table, error) { return e22ScaleTiers(x, seed) })},
		{"A1", one(func(x Exec, tb *Testbed, _ int64) (*Table, error) { return A1RangeVsArraySize(tb) })},
		{"A2", one(func(x Exec, tb *Testbed, seed int64) (*Table, error) { return a2SDMChains(x, tb, seed) })},
		{"R1", one(func(x Exec, tb *Testbed, seed int64) (*Table, error) { return r1BurstBlockage(x, tb, seed) })},
		{"R2", one(func(x Exec, tb *Testbed, seed int64) (*Table, error) { return r2TagChurn(x, tb, seed) })},
		{"R3", one(func(x Exec, tb *Testbed, seed int64) (*Table, error) { return r3AckLoss(x, tb, seed) })},
		{"T2", one(func(x Exec, _ *Testbed, _ int64) (*Table, error) { return T2PowerBreakdown() })},
		{"T3", one(func(x Exec, _ *Testbed, _ int64) (*Table, error) { return T3EnergyCompare() })},
	}
}

// ExperimentIDs returns the suite's IDs in report order.
func ExperimentIDs() []string {
	exps := Experiments()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// ChaosExperimentIDs returns the fault-injection soak subset (R1-R3) in
// report order — what mmtag-bench -faults runs.
func ChaosExperimentIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		if strings.HasPrefix(e.ID, "R") {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

// NetExperimentIDs returns the multi-AP deployment subset (E19-E22) in
// report order — what mmtag-bench -aps runs.
func NetExperimentIDs() []string {
	return []string{"E19", "E20", "E21", "E22"}
}

// RunExperiment runs one experiment by (case-insensitive) ID on x.
func RunExperiment(x Exec, id string, tb *Testbed, seed int64) ([]*Table, error) {
	tb = tb.orDefault()
	for _, e := range Experiments() {
		if strings.EqualFold(e.ID, id) {
			return e.Run(x, tb, seed)
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (want E1..E22, A1, A2, R1..R3, T2, T3, all)", id)
}

// RunSuite runs every experiment and returns the full paper-style table
// set in report order. Experiments shard across x.Pool (and their trial
// grids shard further on the same pool — the pool's help-first design
// makes the nesting deadlock-free); results land in fixed slots, so the
// output is byte-identical to a serial run at any pool size.
func RunSuite(x Exec, tb *Testbed, seed int64) ([]*Table, error) {
	tb = tb.orDefault()
	exps := Experiments()
	results := make([][]*Table, len(exps))
	err := x.Pool.Map(x.context(), len(exps), func(i int) error {
		tabs, err := exps[i].Run(x, tb, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", exps[i].ID, err)
		}
		results[i] = tabs
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Table
	for _, tabs := range results {
		out = append(out, tabs...)
	}
	return out, nil
}

// AllTables runs the whole suite serially — the reference output the
// parallel suite reproduces bit-for-bit.
func AllTables(tb *Testbed, seed int64) ([]*Table, error) {
	return RunSuite(Exec{}, tb, seed)
}
