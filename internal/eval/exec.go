package eval

import (
	"context"

	"mmtag/internal/par"
)

// Exec carries the execution substrate an experiment's trial grid runs
// on: a possibly-nil worker pool and an optional cancellation context.
// The zero Exec is fully serial and is what the exported single-
// experiment functions use, so their results define the reference
// output every parallel schedule must reproduce byte-for-byte.
type Exec struct {
	// Pool shards trial grids (and the suite) across workers; nil runs
	// everything on the calling goroutine in index order.
	Pool *par.Pool
	// Ctx cancels a run early; nil means never.
	Ctx context.Context
}

// context returns the effective cancellation context.
func (x Exec) context() context.Context {
	if x.Ctx != nil {
		return x.Ctx
	}
	return context.Background()
}

// row is one table row still in AddRow cell form.
type row []interface{}

// runGrid evaluates an experiment's declared trial grid: shards
// 0..shards-1 are independent (each derives any randomness from its own
// index, never from a neighbour's state), run concurrently on x.Pool,
// and their rows merge into t by ascending shard index — an
// order-insensitive reduction, so the finished table is identical
// whatever order the scheduler completed the shards in.
func (x Exec) runGrid(t *Table, shards int, run func(shard int) ([]row, error)) error {
	rows := make([][]row, shards)
	err := x.Pool.Map(x.context(), shards, func(i int) error {
		r, err := run(i)
		rows[i] = r
		return err
	})
	if err != nil {
		return err
	}
	for _, rs := range rows {
		for _, r := range rs {
			t.AddRow(r...)
		}
	}
	return nil
}
