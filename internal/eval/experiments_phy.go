package eval

import (
	"fmt"
	"math"
	"math/rand"

	"mmtag/internal/ap"
	"mmtag/internal/channel"
	"mmtag/internal/fastrand"
	"mmtag/internal/frame"
	"mmtag/internal/phy"
	"mmtag/internal/rfmath"
	"mmtag/internal/vanatta"
)

// E3BERvsEbN0 regenerates the modulation micro-benchmark: Monte-Carlo
// BER against the closed-form AWGN curves for every tag alphabet. The
// ratio column should hover around 1.
func E3BERvsEbN0(seed int64) (*Table, error) {
	return e3BERvsEbN0(Exec{}, seed)
}

// e3BERvsEbN0 is an indivisible grid: one RNG stream deliberately
// threads through every (modulation, Eb/N0) cell in row order, so
// splitting it would change the published numbers. It runs as a single
// shard and parallelizes only against its sibling experiments. The
// stream comes from fastrand and the cells run the fused
// MeasureBERFast — bit-identical to the historical
// rand.New + MeasureBER pairing.
// e3Mods, e3EbN0DB and e3BitBudget are package-level so the throughput
// accounting in tput.go counts exactly the symbols the experiment
// processes (see TagSymbolWorkload) — one definition, no drift.
type e3Mod struct {
	name   string
	set    vanatta.StateSet
	theory func(float64) float64
}

var e3Mods = []e3Mod{
	{"ook", vanatta.OOK(), rfmath.BEROOK},
	{"bpsk", vanatta.BPSK(), rfmath.BERBPSK},
	{"qpsk", vanatta.QPSK(), rfmath.BERQPSK},
	{"8psk", vanatta.PSK8(), func(e float64) float64 { return rfmath.BERMPSK(8, e) }},
	{"16qam", vanatta.QAM16(), func(e float64) float64 { return rfmath.BERMQAM(16, e) }},
}

var e3EbN0DB = []float64{2, 4, 6, 8, 10}

// e3BitBudget sizes one E3 cell's Monte-Carlo run: enough bits to see
// ~60 errors at the theoretical BER, within fixed bounds.
func e3BitBudget(wantBER float64) int {
	nBits := 60000
	if wantBER < 1e-3 {
		nBits = int(60 / wantBER)
	}
	if nBits > 1_500_000 {
		nBits = 1_500_000
	}
	return nBits
}

func e3BERvsEbN0(x Exec, seed int64) (*Table, error) {
	rng := fastrand.New(seed)
	mods := e3Mods
	t := &Table{
		ID:     "E3",
		Title:  "Measured vs closed-form BER on AWGN",
		Header: []string{"mod", "ebn0_dB", "ber_measured", "ber_theory", "ratio"},
	}
	err := x.runGrid(t, 1, func(int) ([]row, error) {
		var rows []row
		for _, m := range mods {
			c, err := phy.NewConstellation(m.name, m.set.States())
			if err != nil {
				return nil, err
			}
			for _, db := range e3EbN0DB {
				ebn0 := rfmath.FromDB(db)
				want := m.theory(ebn0)
				nBits := e3BitBudget(want)
				res, err := phy.MeasureBERFast(c, ebn0, nBits, rng)
				if err != nil {
					return nil, err
				}
				got := res.Rate()
				ratio := 0.0
				if want > 0 {
					ratio = got / want
				}
				rows = append(rows, row{m.name, db, got, want, ratio})
			}
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E9Cancellation regenerates the self-interference micro-benchmark: a
// waveform-level uplink reception while the analog cancellation depth
// varies. The ADC full scale must fit the residual self-interference;
// with too little cancellation the tag echo falls below the converter's
// quantization floor and the frame is lost.
func E9Cancellation(tb *Testbed, seed int64) (*Table, error) {
	return e9Cancellation(Exec{}, tb, seed)
}

// e9Cancellation's trial grid is the cancellation-depth axis; each
// shard has always seeded its own RNG from the depth, so the sharded
// rows are bit-identical to the historical serial loop.
func e9Cancellation(x Exec, tb *Testbed, seed int64) (*Table, error) {
	tb = tb.orDefault()
	arr, err := tb.tagArray(0)
	if err != nil {
		return nil, err
	}
	const distance = 2.0
	const isolationDB = 30.0
	link := tb.link(arr, distance, 0, 1)
	echoW, err := link.ReceivedPowerW()
	if err != nil {
		return nil, err
	}

	set := vanatta.OOK()
	c, err := phy.NewConstellation(set.Name(), set.States())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E9",
		Title: "Uplink decode vs analog SI cancellation depth (8-bit ADC with AGC, 2 m)",
		Header: []string{"cancel_dB", "residual_si_dBm", "echo_below_si_dB",
			"sync_score", "evm", "decoded"},
		Notes: []string{"AGC sets the ADC full scale to the composite signal; weak cancellation leaves the echo under the quantization floor"},
	}
	grid := e9CancelGrid
	err = x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		cancelDB := grid[shard]
		rng := fastrand.New(seed + int64(cancelDB))
		residualW := channel.SelfInterferencePowerW(tb.TxPowerW, isolationDB+cancelDB)
		// Normalize the residual SI to amplitude 1; the echo scales
		// relative to it.
		echoAmp := complex(0, 0)
		if residualW > 0 {
			echoAmp = complex(math.Sqrt(echoW/residualW), 0)
		}

		apx, err := ap.New(ap.Config{ADCBits: 8})
		if err != nil {
			return nil, err
		}
		dem, err := ap.NewDemodulator(c, 63, frame.Options{})
		if err != nil {
			return nil, err
		}
		f := &frame.Frame{Type: frame.TypeData, TagID: 1, Payload: e9Payload}
		bits, err := f.EncodeBits(frame.Options{})
		if err != nil {
			return nil, err
		}
		symbols := append(dem.PreambleSymbolIndices(), c.MapBits(nil, bits)...)
		mod, err := vanatta.NewModulator(set, 10e6, 80e6, tb.SwitchRiseTime)
		if err != nil {
			return nil, err
		}
		wave := mod.Waveform(nil, symbols)
		noiseW := apx.NoisePowerW(10e6)
		noiseRel := 0.0
		if residualW > 0 {
			noiseRel = noiseW / residualW
		}
		for i := range wave {
			wave[i] = wave[i]*echoAmp + complex(0.9, 0.3) // residual SI at ~unit amplitude
		}
		channel.AWGNFast(rng, wave, noiseRel)
		// AGC: the converter full scale tracks the composite peak.
		peak := 0.0
		for _, v := range wave {
			if a := math.Hypot(real(v), imag(v)); a > peak {
				peak = a
			}
		}
		quant := apx.QuantizeTo(wave, wave, peak)
		res := dem.DemodulateWaveform(quant, 8)

		return []row{{cancelDB, rfmath.DBm(residualW), rfmath.DB(echoW / residualW),
			res.SyncScore, res.EVM, fmt.Sprintf("%v", res.OK())}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E11SwitchLimit regenerates the switching-speed micro-benchmark: EVM
// and decode success versus symbol rate for a fixed switch rise time,
// plus the design-rule maximum symbol rate for several switch classes.
func E11SwitchLimit(tb *Testbed, seed int64) ([]*Table, error) {
	return e11SwitchLimit(Exec{}, tb, seed)
}

// e11SwitchLimit shards the waveform sweep over the symbol-rate axis
// (per-rate RNG seeding, as always); the closed-form design-rule table
// is too cheap to shard.
func e11SwitchLimit(x Exec, tb *Testbed, seed int64) ([]*Table, error) {
	tb = tb.orDefault()
	set := vanatta.BPSK()
	c, err := phy.NewConstellation(set.Name(), set.States())
	if err != nil {
		return nil, err
	}
	sweep := &Table{
		ID:     "E11",
		Title:  fmt.Sprintf("Constellation quality vs symbol rate (rise time %.0f ns)", tb.SwitchRiseTime*1e9),
		Header: []string{"symbol_rate_MHz", "settled_fraction", "evm", "decoded"},
	}
	payload := e11Payload
	grid := e11RateGrid
	err = x.runGrid(sweep, len(grid), func(shard int) ([]row, error) {
		rateMHz := grid[shard]
		rng := fastrand.New(seed + int64(rateMHz))
		symbolRate := rateMHz * 1e6
		dem, err := ap.NewDemodulator(c, 63, frame.Options{})
		if err != nil {
			return nil, err
		}
		f := &frame.Frame{Type: frame.TypeData, TagID: 1, Payload: payload}
		bits, err := f.EncodeBits(frame.Options{})
		if err != nil {
			return nil, err
		}
		symbols := append(dem.PreambleSymbolIndices(), c.MapBits(nil, bits)...)
		mod, err := vanatta.NewModulator(set, symbolRate, symbolRate*8, tb.SwitchRiseTime)
		if err != nil {
			return nil, err
		}
		wave := mod.Waveform(nil, symbols)
		for i := range wave {
			wave[i] = wave[i]*0.01 + complex(0.7, 0.2)
		}
		channel.AWGNFast(rng, wave, 1e-8)
		res := dem.DemodulateWaveform(wave, 8)
		return []row{{rateMHz, mod.SettledFraction(), res.EVM, fmt.Sprintf("%v", res.OK())}}, nil
	})
	if err != nil {
		return nil, err
	}

	classes := &Table{
		ID:     "E11b",
		Title:  "Design-rule max symbol rate vs switch rise time",
		Header: []string{"rise_time_ns", "max_symbol_rate_MHz"},
	}
	for _, ns := range []float64{1, 2, 5, 10, 20, 50} {
		classes.AddRow(ns, vanatta.MaxSymbolRate(ns*1e-9)/1e6)
	}
	return []*Table{sweep, classes}, nil
}

// E12CodedPER regenerates the coding figure: Monte-Carlo packet error
// rate for 256-byte frames across channel SNR, for three receivers —
// uncoded, rate-1/2 convolutional with hard decisions, and the same
// code with soft decisions. Every receiver sees the identical noisy
// soft levels; the coded curves fall several dB earlier, with the soft
// path earliest.
func E12CodedPER(seed int64) (*Table, error) {
	return e12CodedPER(Exec{}, seed)
}

// e12CodedPER's trial grid is the SNR axis — the suite's most
// expensive experiment, and the one that profits most from sharding.
func e12CodedPER(x Exec, seed int64) (*Table, error) {
	const trials = 60
	const payloadLen = 256
	t := &Table{
		ID:     "E12",
		Title:  "Frame error rate vs channel SNR (256 B frames, BPSK)",
		Header: []string{"esn0_dB", "per_uncoded", "per_coded_hard", "per_coded_soft"},
		Notes:  []string{"Gaussian soft levels at the BPSK operating point; hard receivers threshold the same levels"},
	}
	hardBits := func(levels []float64) []byte {
		out := make([]byte, len(levels))
		for i, v := range levels {
			if v > 0.5 {
				out[i] = 1
			}
		}
		return out
	}
	grid := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		db := grid[shard]
		esn0 := rfmath.FromDB(db)
		// BPSK in 0/1 level space: unit separation, hard-decision error
		// Q(0.5/sigma) = Q(sqrt(2 Es/N0)).
		sigma := 0.5 / math.Sqrt(2*esn0)
		var failUncoded, failHard, failSoft int
		rng := rand.New(rand.NewSource(seed + int64(db)))
		for i := 0; i < trials; i++ {
			payload := make([]byte, payloadLen)
			rng.Read(payload)
			f := &frame.Frame{Type: frame.TypeData, TagID: 1, Payload: payload}

			// Uncoded path.
			plainBits, err := f.EncodeBits(frame.Options{})
			if err != nil {
				return nil, err
			}
			plainLevels := make([]float64, len(plainBits))
			for j, b := range plainBits {
				plainLevels[j] = float64(b) + rng.NormFloat64()*sigma
			}
			if _, _, err := frame.DecodeBits(hardBits(plainLevels), frame.Options{}); err != nil {
				failUncoded++
			}

			// Coded path: one noise realization, two receivers.
			codedBits, err := f.EncodeBits(frame.Options{Coded: true})
			if err != nil {
				return nil, err
			}
			levels := make([]float64, len(codedBits))
			for j, b := range codedBits {
				levels[j] = float64(b) + rng.NormFloat64()*sigma
			}
			if _, _, err := frame.DecodeBits(hardBits(levels), frame.Options{Coded: true}); err != nil {
				failHard++
			}
			if _, _, err := frame.DecodeBitsSoft(levels, frame.Options{Coded: true}); err != nil {
				failSoft++
			}
		}
		return []row{{db, float64(failUncoded) / trials, float64(failHard) / trials,
			float64(failSoft) / trials}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
