package eval

import (
	"mmtag/internal/mac"
	"mmtag/internal/rfmath"
	"mmtag/internal/sim"
)

// E17Interference evaluates dense deployments: a neighbouring AP's
// carrier raises the victim reader's interference floor. The experiment
// sweeps the interferer's EIRP with the interferer placed inside the
// victim's serving sector, and reports the victim network's goodput and
// per-tag SINR degradation.
func E17Interference(tb *Testbed, seed int64) (*Table, error) {
	return e17Interference(Exec{}, tb, seed)
}

// e17Interference's trial grid is the interferer-EIRP axis; every
// shard builds its own victim network, so nothing is shared.
func e17Interference(x Exec, tb *Testbed, seed int64) (*Table, error) {
	tb = tb.orDefault()
	t := &Table{
		ID:     "E17",
		Title:  "Co-channel interference: victim goodput vs neighbour AP EIRP (8 m away, in-sector)",
		Header: []string{"interferer_eirp_dBm", "tag_sinr_dB", "goodput_Mbps", "frames_ok"},
		Notes:  []string{"interference lands at an uncorrelated offset and degrades the link like noise"},
	}
	// EIRP -999 marks the clean baseline.
	grid := []float64{-999, 10, 20, 30, 40, 50}
	err := x.runGrid(t, len(grid), func(shard int) ([]row, error) {
		eirpDBm := grid[shard]
		net, err := buildFleet(tb, 4, seed+9)
		if err != nil {
			return nil, err
		}
		if eirpDBm > -999 {
			if err := net.AddInterferer(sim.Interferer{
				AzimuthRad: sim.Deg(10),
				DistanceM:  8,
				EIRPW:      rfmath.FromDBm(eirpDBm),
			}); err != nil {
				return nil, err
			}
		}
		// Representative tag SINR: the tag closest to the interferer's
		// bearing, queried on its own beam (worst-coupled victim).
		bestID, bestSep := net.Tags()[0], 999.0
		for _, id := range net.Tags() {
			p, _ := net.Placement(id)
			sep := p.AzimuthRad - sim.Deg(10)
			if sep < 0 {
				sep = -sep
			}
			if sep < bestSep {
				bestID, bestSep = id, sep
			}
		}
		pv, _ := net.Placement(bestID)
		snr, audible := net.SNR(bestID, pv.AzimuthRad, mac.Rate{Mod: mac.ModQPSK(), BitRate: 20e6})
		sinrDB := -99.0
		if audible && snr > 0 {
			sinrDB = rfmath.DB(snr)
		}
		rep, err := sim.RunInventory(net, sim.InventoryConfig{Duration: 0.02, Seed: seed})
		if err != nil {
			return nil, err
		}
		label := interface{}(eirpDBm)
		if eirpDBm == -999 {
			label = "none"
		}
		return []row{{label, sinrDB, rep.GoodputBps / 1e6, rep.FramesOK}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
