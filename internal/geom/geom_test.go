package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	a := Point{3, 4}
	if a.Norm() != 5 {
		t.Fatal("norm")
	}
	if Dist(Point{1, 1}, Point{4, 5}) != 5 {
		t.Fatal("dist")
	}
	if (a.Sub(Point{1, 1})) != (Point{2, 3}) {
		t.Fatal("sub")
	}
	if (a.Add(Point{1, -1})) != (Point{4, 3}) {
		t.Fatal("add")
	}
	if a.Scale(2) != (Point{6, 8}) {
		t.Fatal("scale")
	}
	if a.Dot(Point{1, 2}) != 11 {
		t.Fatal("dot")
	}
}

func TestRectangleValidation(t *testing.T) {
	if _, err := Rectangle(0, 5, 1); err == nil {
		t.Fatal("zero width must error")
	}
	r, err := Rectangle(10, 6, 2)
	if err != nil || len(r.Walls) != 4 {
		t.Fatalf("rectangle: %v", err)
	}
	for _, w := range r.Walls {
		if w.ReflectivityRCS != 2 {
			t.Fatal("wall RCS not applied")
		}
	}
}

func TestSegmentsIntersect(t *testing.T) {
	// Crossing diagonals.
	if !segmentsIntersect(Point{0, 0}, Point{2, 2}, Point{0, 2}, Point{2, 0}) {
		t.Fatal("diagonals must intersect")
	}
	// Parallel lines don't.
	if segmentsIntersect(Point{0, 0}, Point{2, 0}, Point{0, 1}, Point{2, 1}) {
		t.Fatal("parallels must not intersect")
	}
	// Disjoint segments on crossing lines don't.
	if segmentsIntersect(Point{0, 0}, Point{1, 1}, Point{5, 6}, Point{6, 5}) {
		t.Fatal("disjoint must not intersect")
	}
}

func TestPathAttenuation(t *testing.T) {
	r, _ := Rectangle(10, 10, 1)
	// A shelf across the middle, 15 dB.
	if err := r.AddObstacle(Point{5, 2}, Point{5, 8}, 15); err != nil {
		t.Fatal(err)
	}
	// Path crossing the shelf.
	if a := r.PathAttenuationDB(Point{1, 5}, Point{9, 5}); a != 15 {
		t.Fatalf("crossing attenuation %g, want 15", a)
	}
	// Path around it.
	if a := r.PathAttenuationDB(Point{1, 9}, Point{9, 9}); a != 0 {
		t.Fatalf("clear path attenuation %g", a)
	}
	// Two obstacles accumulate.
	r.AddObstacle(Point{7, 2}, Point{7, 8}, 5)
	if a := r.PathAttenuationDB(Point{1, 5}, Point{9, 5}); a != 20 {
		t.Fatalf("double crossing %g, want 20", a)
	}
}

func TestAddObstacleValidation(t *testing.T) {
	r, _ := Rectangle(4, 4, 1)
	if err := r.AddObstacle(Point{1, 1}, Point{1, 1}, 5); err == nil {
		t.Fatal("degenerate obstacle must error")
	}
	if err := r.AddObstacle(Point{1, 1}, Point{2, 2}, -1); err == nil {
		t.Fatal("negative attenuation must error")
	}
}

func TestMirror(t *testing.T) {
	// Mirror across the X axis.
	wall := Segment{A: Point{0, 0}, B: Point{10, 0}}
	m := Mirror(Point{3, 4}, wall)
	if math.Abs(m.X-3) > 1e-12 || math.Abs(m.Y+4) > 1e-12 {
		t.Fatalf("mirror %v", m)
	}
	// Mirroring twice returns the original.
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			return true
		}
		p := Point{x, y}
		back := Mirror(Mirror(p, wall), wall)
		return Dist(p, back) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// Degenerate segment: identity.
	if Mirror(Point{1, 2}, Segment{A: Point{3, 3}, B: Point{3, 3}}) != (Point{1, 2}) {
		t.Fatal("degenerate mirror must be identity")
	}
}

func TestMonostaticEchoes(t *testing.T) {
	r, _ := Rectangle(10, 6, 3)
	ap := Point{2, 3}
	echoes := r.MonostaticEchoes(ap)
	// All four perpendicular feet are inside the rectangle's walls.
	if len(echoes) != 4 {
		t.Fatalf("echo count %d, want 4", len(echoes))
	}
	// Distances: 3 (bottom), 8 (right), 3 (top), 2 (left).
	want := map[float64]bool{3: true, 8: true, 2: true}
	for _, e := range echoes {
		if !want[e.DistanceM] {
			t.Fatalf("unexpected echo distance %g", e.DistanceM)
		}
		if e.RCS != 3 {
			t.Fatal("echo RCS")
		}
	}
	// An AP outside a wall's span loses that echo.
	short := Room{Walls: []Segment{{A: Point{5, 0}, B: Point{6, 0}, ReflectivityRCS: 1}}}
	if n := len(short.MonostaticEchoes(Point{0, 3})); n != 0 {
		t.Fatalf("off-span echo count %d, want 0", n)
	}
}

func TestPolar(t *testing.T) {
	ap := Point{0, 0}
	// Target straight down boresight (+X).
	d, az := Polar(ap, Point{5, 0}, 0)
	if d != 5 || math.Abs(az) > 1e-12 {
		t.Fatalf("boresight polar (%g, %g)", d, az)
	}
	// 45 degrees left.
	d, az = Polar(ap, Point{1, 1}, 0)
	if math.Abs(d-math.Sqrt2) > 1e-12 || math.Abs(az-math.Pi/4) > 1e-12 {
		t.Fatalf("diagonal polar (%g, %g)", d, az)
	}
	// Boresight rotation subtracts.
	_, az = Polar(ap, Point{1, 1}, math.Pi/4)
	if math.Abs(az) > 1e-12 {
		t.Fatalf("rotated polar az %g", az)
	}
	// Wrap-around stays in (-pi, pi].
	_, az = Polar(ap, Point{-1, -0.001}, math.Pi/2)
	if az > math.Pi || az <= -math.Pi {
		t.Fatalf("azimuth %g out of range", az)
	}
}
