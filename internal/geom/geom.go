// Package geom models simple 2-D deployment geometry: a room made of
// wall segments and interior obstacles. It converts geometry into the
// quantities the radio layer consumes — obstacle attenuation along a
// path, monostatic wall-clutter reflectors for the AP's cancellation
// problem, and polar (distance, azimuth) coordinates for tag placement.
//
// DESIGN.md: section 3 (module inventory); the room-geometry experiment E18
// of section 4 and the deployment grid of section 7 build on it.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D position in metres.
type Point struct {
	X, Y float64
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the distance between two points.
func Dist(a, b Point) float64 { return a.Sub(b).Norm() }

// Segment is a wall or obstacle between two endpoints.
type Segment struct {
	A, B Point
	// AttenuationDB is the one-way loss for a path crossing the
	// segment (interior obstacles; 0 for a wall that is never crossed).
	AttenuationDB float64
	// ReflectivityRCS is the monostatic radar cross-section (m²) the
	// segment presents at normal incidence (walls: 1-10 m² per
	// illuminated patch).
	ReflectivityRCS float64
}

// Room is a set of boundary walls plus interior obstacles.
type Room struct {
	Walls     []Segment
	Obstacles []Segment
}

// Rectangle builds a room with four walls spanning (0,0)-(w,h), each
// with the given normal-incidence RCS.
func Rectangle(w, h, wallRCS float64) (Room, error) {
	if w <= 0 || h <= 0 {
		return Room{}, fmt.Errorf("geom: rectangle needs positive dimensions, got %g x %g", w, h)
	}
	mk := func(a, b Point) Segment {
		return Segment{A: a, B: b, ReflectivityRCS: wallRCS}
	}
	return Room{Walls: []Segment{
		mk(Point{0, 0}, Point{w, 0}),
		mk(Point{w, 0}, Point{w, h}),
		mk(Point{w, h}, Point{0, h}),
		mk(Point{0, h}, Point{0, 0}),
	}}, nil
}

// AddObstacle registers an interior segment with one-way attenuation.
func (r *Room) AddObstacle(a, b Point, attenuationDB float64) error {
	if a == b {
		return fmt.Errorf("geom: degenerate obstacle")
	}
	if attenuationDB < 0 {
		return fmt.Errorf("geom: attenuation must be >= 0")
	}
	r.Obstacles = append(r.Obstacles, Segment{A: a, B: b, AttenuationDB: attenuationDB})
	return nil
}

// segmentsIntersect reports whether segments pq and ab properly
// intersect (sharing an interior point).
func segmentsIntersect(p, q, a, b Point) bool {
	d1 := cross(b.Sub(a), p.Sub(a))
	d2 := cross(b.Sub(a), q.Sub(a))
	d3 := cross(q.Sub(p), a.Sub(p))
	d4 := cross(q.Sub(p), b.Sub(p))
	return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
}

func cross(a, b Point) float64 { return a.X*b.Y - a.Y*b.X }

// PathAttenuationDB sums the one-way attenuation of every obstacle the
// straight path from a to b crosses.
func (r Room) PathAttenuationDB(a, b Point) float64 {
	total := 0.0
	for _, o := range r.Obstacles {
		if segmentsIntersect(a, b, o.A, o.B) {
			total += o.AttenuationDB
		}
	}
	return total
}

// Mirror reflects p across the infinite line through the segment.
func Mirror(p Point, s Segment) Point {
	d := s.B.Sub(s.A)
	n2 := d.Dot(d)
	if n2 == 0 {
		return p
	}
	t := p.Sub(s.A).Dot(d) / n2
	foot := s.A.Add(d.Scale(t))
	return foot.Add(foot.Sub(p))
}

// perpendicularFoot returns the closest point on the segment's infinite
// line to p, its parameter t, and whether the foot lies within the
// segment.
func perpendicularFoot(p Point, s Segment) (Point, float64, bool) {
	d := s.B.Sub(s.A)
	n2 := d.Dot(d)
	if n2 == 0 {
		return s.A, 0, false
	}
	t := p.Sub(s.A).Dot(d) / n2
	foot := s.A.Add(d.Scale(t))
	return foot, t, t >= 0 && t <= 1
}

// WallEcho describes one monostatic wall reflection seen by a radar at
// a given position.
type WallEcho struct {
	// Point is the specular reflection point on the wall.
	Point Point
	// DistanceM is the one-way range to the specular point.
	DistanceM float64
	// RCS is the effective cross-section of the echo.
	RCS float64
}

// MonostaticEchoes returns the first-order wall echoes for a radar at
// ap: one per wall whose perpendicular foot falls within the wall
// segment (the specular condition for a monostatic radar).
func (r Room) MonostaticEchoes(ap Point) []WallEcho {
	var out []WallEcho
	for _, w := range r.Walls {
		foot, _, inside := perpendicularFoot(ap, w)
		if !inside {
			continue
		}
		d := Dist(ap, foot)
		if d == 0 {
			continue
		}
		out = append(out, WallEcho{Point: foot, DistanceM: d, RCS: w.ReflectivityRCS})
	}
	return out
}

// Polar converts a target position into (distance, azimuth) relative to
// an AP at origin facing along boresight (radians from +X axis).
func Polar(ap, target Point, boresightRad float64) (distanceM, azimuthRad float64) {
	d := target.Sub(ap)
	distanceM = d.Norm()
	azimuthRad = math.Atan2(d.Y, d.X) - boresightRad
	// Normalize to (-pi, pi].
	for azimuthRad > math.Pi {
		azimuthRad -= 2 * math.Pi
	}
	for azimuthRad <= -math.Pi {
		azimuthRad += 2 * math.Pi
	}
	return distanceM, azimuthRad
}
