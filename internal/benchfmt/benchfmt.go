// Package benchfmt is the shared benchmark-report format behind the
// repo's performance gates: the BENCH_<label>.json schema written by
// cmd/mmtag-bench (evaluation-suite regeneration cost) and
// cmd/mmtag-load (service latency under closed-loop load),
// cmd/mmtag-bench's "tput" rows (demodulation throughput per core),
// and the comparison rules `make bench-check` applies against the
// committed baseline. Rows carry a suite discriminator so one baseline
// file can hold all these populations: a comparison only judges baseline rows whose
// suite the current run measured, which lets mmtag-bench gate the eval
// rows without tripping over load rows and vice versa.
//
// DESIGN.md: section 10.6 (load benchmark rows and the suite-scoped
// gate).
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Result is one benchmark row. For the eval suite (empty Suite) the
// fields are wall time, heap traffic and table-row count of one
// experiment regeneration, each the minimum over the measurement reps.
// For the "load" suite NsOp carries the p99 request latency, BytesOp
// the p50 (both in nanoseconds), Rows the count of server errors plus
// client timeouts (baseline 0, so the exact row-count gate turns any
// 5xx into a regression), and AllocsOp is unused.
// For the "tput" suite (demodulation throughput per core, written by
// mmtag-bench -experiment tput or all) NsOp is wall nanoseconds per
// million tag·symbols on a single worker (minimum over reps — a
// hardware-normalized rate, so the percentage gate reads directly as a
// throughput regression), BytesOp the tag·symbol workload of one
// regeneration or batch pass, Rows the table-row or batch-lane count,
// and AllocsOp is unused (the batch path's allocation discipline is
// enforced by AllocsPerRun guards in internal/ap and internal/dsp).
type Result struct {
	Name     string `json:"name"`
	Suite    string `json:"suite,omitempty"`
	NsOp     int64  `json:"ns_op"`
	AllocsOp uint64 `json:"allocs_op"`
	BytesOp  uint64 `json:"bytes_op"`
	Rows     int    `json:"rows"`
}

// Report is the persisted benchmark file format (BENCH_<label>.json).
type Report struct {
	Label      string   `json:"label"`
	GoVersion  string   `json:"go_version"`
	Seed       int64    `json:"seed"`
	Reps       int      `json:"reps"`
	Benchmarks []Result `json:"benchmarks"`
}

// Write renders the report as indented JSON to path ("-" = w).
func Write(report *Report, path string, w io.Writer) error {
	body, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if path == "-" {
		_, err = w.Write(body)
		return err
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote benchmark report to %s\n", path)
	return nil
}

// Load reads a BENCH_*.json file.
func Load(path string) (*Report, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report Report
	if err := json.Unmarshal(body, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &report, nil
}

// NsFloor is the baseline wall time below which the ns/op check is
// skipped: a sub-millisecond measurement is dominated by scheduler and
// timer noise, so a percentage comparison of its minimum is
// meaningless — one preemption doubles it. The allocation and
// row-count gates still cover those rows, and any real slowdown large
// enough to matter shows up in the millisecond-scale rows that
// exercise the same code.
const NsFloor = int64(time.Millisecond)

// Compare checks cur against base and returns one line per regression:
// a baseline row missing from the current run, a row-count change (the
// output shape moved — for load rows, server errors appeared), an
// allocs/op increase beyond allocsTolPct percent, or an ns/op increase
// beyond nsTolPct percent. Only baseline rows from suites the current
// run measured are judged, so a partial run (one suite) gates cleanly
// against a combined baseline. nsTolPct <= 0 disables the time check
// (wall time is machine-dependent, so CI uses a generous tolerance).
// allocsTolPct <= 0 demands exact allocation counts; a hair's breadth
// of tolerance (CI uses 0.01%) absorbs GC-timing noise — automatic GC
// cycles flush sync.Pool caches mid-run at schedule-dependent points,
// refilling them costs a handful of allocations — while still catching
// any per-iteration leak, which shows up thousands of allocations at a
// time.
func Compare(cur, base *Report, nsTolPct, allocsTolPct float64) []string {
	type key struct{ suite, name string }
	byKey := make(map[key]Result, len(cur.Benchmarks))
	suites := make(map[string]bool)
	for _, b := range cur.Benchmarks {
		byKey[key{b.Suite, b.Name}] = b
		suites[b.Suite] = true
	}
	var problems []string
	for _, old := range base.Benchmarks {
		if !suites[old.Suite] {
			continue
		}
		now, ok := byKey[key{old.Suite, old.Name}]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from current run", old.Name))
			continue
		}
		if now.Rows != old.Rows {
			problems = append(problems, fmt.Sprintf("%s: row count changed %d -> %d", old.Name, old.Rows, now.Rows))
		}
		allocLimit := float64(old.AllocsOp) * (1 + allocsTolPct/100)
		if allocsTolPct <= 0 {
			allocLimit = float64(old.AllocsOp)
		}
		if float64(now.AllocsOp) > allocLimit {
			problems = append(problems, fmt.Sprintf("%s: allocs/op regressed %d -> %d",
				old.Name, old.AllocsOp, now.AllocsOp))
		}
		if nsTolPct > 0 && old.NsOp >= NsFloor {
			limit := float64(old.NsOp) * (1 + nsTolPct/100)
			if float64(now.NsOp) > limit {
				problems = append(problems, fmt.Sprintf("%s: ns/op regressed %d -> %d (>%g%% over baseline)",
					old.Name, old.NsOp, now.NsOp, nsTolPct))
			}
		}
	}
	return problems
}

// MergeRows replaces base's rows from cur's suites with cur's rows and
// returns the union, preserving baseline rows from other suites — the
// update path for refreshing one suite of a combined BENCH file.
func MergeRows(base, cur *Report) []Result {
	suites := make(map[string]bool)
	for _, b := range cur.Benchmarks {
		suites[b.Suite] = true
	}
	out := make([]Result, 0, len(base.Benchmarks)+len(cur.Benchmarks))
	for _, b := range base.Benchmarks {
		if !suites[b.Suite] {
			out = append(out, b)
		}
	}
	return append(out, cur.Benchmarks...)
}
