package benchfmt

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func combined() *Report {
	return &Report{
		Label: "base",
		Benchmarks: []Result{
			{Name: "E1", NsOp: 10_000_000, AllocsOp: 10, BytesOp: 100, Rows: 5},
			{Name: "E2", NsOp: 20_000_000, AllocsOp: 0, BytesOp: 0, Rows: 3},
			{Name: "LOAD/mix", Suite: "load", NsOp: 5_000_000, BytesOp: 1_000_000, Rows: 0},
		},
	}
}

// TestCompareSuiteScoping pins the reason the suite field exists: a run
// that only measured one suite gates against a combined baseline
// without tripping over the other suite's rows.
func TestCompareSuiteScoping(t *testing.T) {
	base := combined()

	// mmtag-bench's view: eval rows only. The load row must not be
	// reported missing.
	evalOnly := &Report{Benchmarks: []Result{
		{Name: "E1", NsOp: 10_000_000, AllocsOp: 10, BytesOp: 100, Rows: 5},
		{Name: "E2", NsOp: 20_000_000, AllocsOp: 0, BytesOp: 0, Rows: 3},
	}}
	if problems := Compare(evalOnly, base, 15, 0); len(problems) != 0 {
		t.Fatalf("eval-only run vs combined baseline: %v", problems)
	}

	// mmtag-load's view: the load row only; eval rows are out of scope,
	// but a vanished load row in a load-suite run still gates.
	loadOnly := &Report{Benchmarks: []Result{
		{Name: "LOAD/mix", Suite: "load", NsOp: 5_500_000, BytesOp: 900_000, Rows: 0},
	}}
	if problems := Compare(loadOnly, base, 15, 0); len(problems) != 0 {
		t.Fatalf("load-only run vs combined baseline: %v", problems)
	}
	renamed := &Report{Benchmarks: []Result{
		{Name: "LOAD/other", Suite: "load", NsOp: 5_000_000, Rows: 0},
	}}
	problems := Compare(renamed, base, 15, 0)
	if len(problems) != 1 || !strings.Contains(problems[0], "missing") {
		t.Fatalf("missing load row not flagged: %v", problems)
	}

	// A load row whose error count moved off the baseline fails the
	// exact row gate — the channel that turns 5xx into a regression.
	errored := &Report{Benchmarks: []Result{
		{Name: "LOAD/mix", Suite: "load", NsOp: 5_000_000, Rows: 7},
	}}
	problems = Compare(errored, base, 15, 0)
	if len(problems) != 1 || !strings.Contains(problems[0], "row count changed") {
		t.Fatalf("load error rows not flagged: %v", problems)
	}

	// p99 latency regression past the tolerance fails the ns gate.
	slow := &Report{Benchmarks: []Result{
		{Name: "LOAD/mix", Suite: "load", NsOp: 9_000_000, Rows: 0},
	}}
	problems = Compare(slow, base, 15, 0)
	if len(problems) != 1 || !strings.Contains(problems[0], "ns/op regressed") {
		t.Fatalf("load latency regression not flagged: %v", problems)
	}

	// A same-name row in a different suite is a different row.
	crossSuite := &Report{Benchmarks: []Result{
		{Name: "E1", Suite: "load", NsOp: 1, Rows: 0},
	}}
	problems = Compare(crossSuite, base, 0, 0)
	if len(problems) != 1 || !strings.Contains(problems[0], "missing") {
		t.Fatalf("cross-suite name collision not isolated: %v", problems)
	}
}

func TestMergeRows(t *testing.T) {
	base := combined()
	fresh := &Report{Benchmarks: []Result{
		{Name: "LOAD/mix", Suite: "load", NsOp: 4_000_000, Rows: 0},
		{Name: "LOAD/extra", Suite: "load", NsOp: 1_000_000, Rows: 0},
	}}
	merged := MergeRows(base, fresh)
	if len(merged) != 4 {
		t.Fatalf("merged = %d rows, want 4: %+v", len(merged), merged)
	}
	for _, r := range merged {
		if r.Suite == "load" && r.Name == "LOAD/mix" && r.NsOp != 4_000_000 {
			t.Fatalf("stale load row survived merge: %+v", r)
		}
		if r.Suite == "" && (r.Name != "E1" && r.Name != "E2") {
			t.Fatalf("eval row corrupted: %+v", r)
		}
	}
}

func TestWriteLoadRoundTripOmitsEmptySuite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	want := combined()
	if err := Write(want, path, io.Discard); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 3 || got.Benchmarks[2].Suite != "load" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Eval rows must serialize without a suite key, keeping the
	// committed baseline diff-stable against the pre-suite format.
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(body), `"suite"`) != 1 {
		t.Fatalf("suite key must be omitted for eval rows:\n%s", body)
	}
}
