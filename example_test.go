package mmtag_test

import (
	"fmt"

	"mmtag"
)

// The minimal workflow: one AP, one tag, a link budget and a run.
func Example() {
	sys, err := mmtag.NewSystem(mmtag.SystemConfig{})
	if err != nil {
		panic(err)
	}
	if err := sys.AddTag(mmtag.TagSpec{ID: 1, DistanceM: 3, Modulation: "qpsk"}); err != nil {
		panic(err)
	}
	link, err := sys.Link(1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("SNR %.1f dB, best rate %s\n", link.SNRdB, link.BestRate)

	rep, err := sys.Run(mmtag.RunConfig{Duration: 0.05, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("discovered %d tag(s)\n", rep.Discovered)
	// Output:
	// SNR 40.4 dB, best rate qpsk-100M
	// discovered 1 tag(s)
}

// Energy per bit at the calibrated operating point.
func ExampleEnergyPerBit() {
	e, err := mmtag.EnergyPerBit(10e6, "ook")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f nJ/bit at 10 Mb/s\n", e*1e9)
	// Output:
	// 2.25 nJ/bit at 10 Mb/s
}

// A mobile tag with a blockage episode: adaptation and ARQ ride it out.
func ExampleSystem_RunMobile() {
	sys, err := mmtag.NewSystem(mmtag.SystemConfig{})
	if err != nil {
		panic(err)
	}
	if err := sys.AddTag(mmtag.TagSpec{ID: 1, DistanceM: 2, Modulation: "qpsk"}); err != nil {
		panic(err)
	}
	rep, err := sys.RunMobile(mmtag.MobilityConfig{
		TagID: 1,
		Waypoints: []mmtag.MobileWaypoint{
			{TimeS: 0, DistanceM: 2},
			{TimeS: 0.1, DistanceM: 6},
		},
		Blockage: []mmtag.BlockageSpec{{StartS: 0.04, EndS: 0.06, AttenuationDB: 20}},
		StepMs:   2,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivery ratio %.2f over %d steps\n", rep.DeliveryRatio(), len(rep.Samples))
	// Output:
	// delivery ratio 1.00 over 51 steps
}

// The switching-speed limit on data rate.
func ExampleMaxBitRate() {
	ook, _ := mmtag.MaxBitRate("ook", 2)
	qpsk, _ := mmtag.MaxBitRate("qpsk", 2)
	fmt.Printf("2 ns switch: OOK %.0f Mb/s, QPSK %.0f Mb/s\n", ook/1e6, qpsk/1e6)
	// Output:
	// 2 ns switch: OOK 183 Mb/s, QPSK 367 Mb/s
}
