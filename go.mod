module mmtag

go 1.22
