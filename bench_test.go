package mmtag

// Benchmark harness: one benchmark per experiment of the evaluation
// (DESIGN.md section 4). Each bench regenerates the full table/figure
// data exactly as cmd/mmtag-bench prints it; -benchtime=1x gives one
// clean reproduction pass. Reported ns/op measures the cost of
// regenerating the experiment, not any claim about the modelled system.

import (
	"testing"

	"mmtag/internal/eval"
	"mmtag/internal/par"
)

const benchSeed = 42

func benchTable(b *testing.B, run func() (*eval.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1RetroPattern(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E1RetroPattern(nil) })
}

func BenchmarkE2LinkBudget(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E2LinkBudget(nil) })
}

func BenchmarkE3BERvsEbN0(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E3BERvsEbN0(benchSeed) })
}

func BenchmarkE4BERvsDistance(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E4BERvsDistance(nil) })
}

func BenchmarkE5Throughput(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E5Throughput(nil) })
}

func BenchmarkE6AngleRobustness(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E6AngleRobustness(nil) })
}

func BenchmarkE7MultiTag(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E7MultiTag(nil, benchSeed) })
}

func BenchmarkE8EnergyPerBit(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E8EnergyPerBit(nil) })
}

func BenchmarkE9Cancellation(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E9Cancellation(nil, benchSeed) })
}

func BenchmarkE10Discovery(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E10Discovery(nil, benchSeed) })
}

func BenchmarkE11SwitchLimit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tabs, err := eval.E11SwitchLimit(nil, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(tabs) != 2 {
			b.Fatal("E11 must produce two tables")
		}
	}
}

func BenchmarkE12CodedPER(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E12CodedPER(benchSeed) })
}

func BenchmarkE13BatteryFree(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E13BatteryFree(nil) })
}

func BenchmarkE14DiscoveryAblation(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E14DiscoveryAblation(nil, benchSeed) })
}

func BenchmarkE15Blockage(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E15Blockage(nil, benchSeed) })
}

func BenchmarkE16Multipath(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E16Multipath(benchSeed) })
}

func BenchmarkE17Interference(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E17Interference(nil, benchSeed) })
}

func BenchmarkE18RoomClutter(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E18RoomClutter(nil) })
}

func BenchmarkE19APScaling(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E19APScaling(benchSeed) })
}

func BenchmarkE20HandoffLatency(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E20HandoffLatency(benchSeed) })
}

func BenchmarkE21EdgeReuse(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E21EdgeReuse(benchSeed) })
}

func BenchmarkE22ScaleTiers(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.E22ScaleTiers(benchSeed) })
}

func BenchmarkA1RangeVsArraySize(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.A1RangeVsArraySize(nil) })
}

func BenchmarkA2SDMChains(b *testing.B) {
	benchTable(b, func() (*eval.Table, error) { return eval.A2SDMChains(nil, benchSeed) })
}

func BenchmarkT2PowerBreakdown(b *testing.B) {
	benchTable(b, eval.T2PowerBreakdown)
}

func BenchmarkT3EnergyCompare(b *testing.B) {
	benchTable(b, eval.T3EnergyCompare)
}

// BenchmarkSuiteSerial regenerates every evaluation table on the
// calling goroutine — the reference cost of a full `mmtag-bench` run.
func BenchmarkSuiteSerial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tabs, err := eval.RunSuite(eval.Exec{}, nil, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(tabs) == 0 {
			b.Fatal("empty suite")
		}
	}
}

// BenchmarkSuiteParallel is the same suite sharded across a
// GOMAXPROCS-sized worker pool (experiments and their trial grids both
// shard). The output is bit-identical to the serial run; the ratio of
// the two benchmarks is the harness's parallel speedup on this machine.
func BenchmarkSuiteParallel(b *testing.B) {
	pool := par.New(par.Config{})
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tabs, err := eval.RunSuite(eval.Exec{Pool: pool}, nil, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(tabs) == 0 {
			b.Fatal("empty suite")
		}
	}
}

func benchSystemRun(b *testing.B, collectMetrics bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(SystemConfig{})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			if err := sys.AddTag(TagSpec{
				ID:         uint8(j + 1),
				DistanceM:  2 + float64(j)*0.5,
				AzimuthDeg: -40 + float64(j)*11,
			}); err != nil {
				b.Fatal(err)
			}
		}
		rep, err := sys.Run(RunConfig{
			Duration:       0.01,
			Seed:           int64(i),
			CollectMetrics: collectMetrics,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Discovered == 0 {
			b.Fatal("no tags discovered")
		}
		if collectMetrics && rep.Metrics == nil {
			b.Fatal("metered run must produce a snapshot")
		}
	}
}

// BenchmarkSystemRun measures a complete discovery + polling round on
// an 8-tag deployment through the public API with observability off (the
// nil-handle path — compare against BenchmarkSystemRunMetered to price
// the instrumentation).
func BenchmarkSystemRun(b *testing.B) { benchSystemRun(b, false) }

// BenchmarkSystemRunMetered is the same round with metrics, spans and
// the registry snapshot on.
func BenchmarkSystemRunMetered(b *testing.B) { benchSystemRun(b, true) }
