package mmtag

import (
	"math"
	"strings"
	"testing"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.TagCount() != 0 {
		t.Fatal("fresh system must be empty")
	}
}

func TestAddTagValidation(t *testing.T) {
	sys, _ := NewSystem(SystemConfig{})
	if err := sys.AddTag(TagSpec{ID: 1}); err == nil {
		t.Fatal("zero distance must error")
	}
	if err := sys.AddTag(TagSpec{ID: 1, DistanceM: 2, Modulation: "64apsk"}); err == nil {
		t.Fatal("unknown modulation must error")
	}
	if err := sys.AddTag(TagSpec{ID: 1, DistanceM: 2}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTag(TagSpec{ID: 1, DistanceM: 3}); err == nil {
		t.Fatal("duplicate ID must error")
	}
	if sys.TagCount() != 1 {
		t.Fatal("count")
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	build := func() (*System, error) {
		sys, err := NewSystem(SystemConfig{})
		if err != nil {
			return nil, err
		}
		for j := 0; j < 4; j++ {
			if err := sys.AddTag(TagSpec{
				ID:         uint8(j + 1),
				DistanceM:  2 + float64(j),
				AzimuthDeg: -30 + float64(j)*20,
			}); err != nil {
				return nil, err
			}
		}
		return sys, nil
	}
	cfg := RunConfig{Duration: 0.02, Seed: 42}
	serial, err := Sweep(build, cfg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(build, cfg, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Replicates) != 3 || len(parallel.Replicates) != 3 {
		t.Fatalf("replicates %d / %d, want 3", len(serial.Replicates), len(parallel.Replicates))
	}
	if serial.GoodputMeanBps != parallel.GoodputMeanBps ||
		serial.GoodputStdDevBps != parallel.GoodputStdDevBps ||
		serial.MeanDiscovered != parallel.MeanDiscovered ||
		serial.FramesOK != parallel.FramesOK {
		t.Fatalf("sweep aggregates depend on worker count:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	for i := range serial.Replicates {
		if serial.Replicates[i].Seed != parallel.Replicates[i].Seed {
			t.Fatalf("replicate %d seeds differ", i)
		}
	}
	if serial.GoodputMeanBps <= 0 || serial.MeanDiscovered == 0 {
		t.Fatalf("sweep produced no traffic: %+v", serial)
	}
}

func TestSweepValidation(t *testing.T) {
	build := func() (*System, error) { return NewSystem(SystemConfig{}) }
	if _, err := Sweep(nil, RunConfig{}, 2, 1); err == nil {
		t.Fatal("nil build must error")
	}
	if _, err := Sweep(build, RunConfig{CollectMetrics: true}, 2, 1); err == nil {
		t.Fatal("metrics sink must error")
	}
	if _, err := Sweep(build, RunConfig{}, 0, 1); err == nil {
		t.Fatal("zero replicates must error")
	}
}

func TestLinkReport(t *testing.T) {
	sys, _ := NewSystem(SystemConfig{})
	sys.AddTag(TagSpec{ID: 1, DistanceM: 2})
	sys.AddTag(TagSpec{ID: 2, DistanceM: 8})
	near, err := sys.Link(1)
	if err != nil {
		t.Fatal(err)
	}
	far, err := sys.Link(2)
	if err != nil {
		t.Fatal(err)
	}
	if near.SNRdB <= far.SNRdB {
		t.Fatal("nearer tag must have higher SNR")
	}
	if near.GoodputMbps < far.GoodputMbps {
		t.Fatal("nearer tag must not get a slower rate")
	}
	if near.BestRate == "" {
		t.Fatal("rate name empty")
	}
	if _, err := sys.Link(99); err == nil {
		t.Fatal("unknown tag must error")
	}
}

func TestRunEndToEnd(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, az := range []float64{-30, 0, 30} {
		if err := sys.AddTag(TagSpec{ID: uint8(i + 1), DistanceM: 2.5, AzimuthDeg: az}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sys.Run(RunConfig{Duration: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Discovered != 3 {
		t.Fatalf("discovered %d of 3", rep.Discovered)
	}
	if rep.GoodputBps <= 0 {
		t.Fatal("no goodput")
	}
	// Determinism: same seed, same report numbers.
	sys2, _ := NewSystem(SystemConfig{})
	for i, az := range []float64{-30, 0, 30} {
		sys2.AddTag(TagSpec{ID: uint8(i + 1), DistanceM: 2.5, AzimuthDeg: az})
	}
	rep2, err := sys2.Run(RunConfig{Duration: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoodputBps != rep2.GoodputBps || rep.FramesOK != rep2.FramesOK {
		t.Fatal("runs with the same seed must be identical")
	}
}

func TestRunEmitsTraceTimeline(t *testing.T) {
	sys, _ := NewSystem(SystemConfig{})
	sys.AddTag(TagSpec{ID: 1, DistanceM: 2})
	var sb strings.Builder
	rep, err := sys.Run(RunConfig{Duration: 0.005, Seed: 1, Trace: &sb})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "discover") || !strings.Contains(out, "poll") {
		t.Fatalf("timeline missing events:\n%.300s", out)
	}
	if strings.Count(out, "poll") != rep.FramesOK+rep.FramesLost {
		t.Fatal("timeline poll count must match report")
	}
}

func TestPathLossExponentReducesRange(t *testing.T) {
	free, _ := NewSystem(SystemConfig{})
	lossy, _ := NewSystem(SystemConfig{PathLossExponent: 3})
	free.AddTag(TagSpec{ID: 1, DistanceM: 6})
	lossy.AddTag(TagSpec{ID: 1, DistanceM: 6})
	f, _ := free.Link(1)
	l, _ := lossy.Link(1)
	if l.SNRdB >= f.SNRdB {
		t.Fatal("steeper exponent must reduce SNR")
	}
}

func TestEnergyPerBit(t *testing.T) {
	ook, err := EnergyPerBit(10e6, "ook")
	if err != nil {
		t.Fatal(err)
	}
	if ook < 2.0e-9 || ook > 2.8e-9 {
		t.Fatalf("OOK at 10 Mb/s %.3g J/bit, want ~2.4 nJ", ook)
	}
	qpsk, _ := EnergyPerBit(10e6, "qpsk")
	if qpsk >= ook {
		t.Fatal("QPSK must be at least as efficient per bit")
	}
	if _, err := EnergyPerBit(1e6, "nope"); err == nil {
		t.Fatal("unknown modulation must error")
	}
}

func TestMaxBitRate(t *testing.T) {
	ook, err := MaxBitRate("ook", 2)
	if err != nil {
		t.Fatal(err)
	}
	qpsk, _ := MaxBitRate("qpsk", 2)
	if math.Abs(qpsk/ook-2) > 1e-9 {
		t.Fatal("QPSK doubles the bit rate at a fixed symbol rate")
	}
	slower, _ := MaxBitRate("ook", 20)
	if slower >= ook {
		t.Fatal("slower switches must cap lower rates")
	}
	if _, err := MaxBitRate("nope", 2); err == nil {
		t.Fatal("unknown modulation must error")
	}
}
