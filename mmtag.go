// Package mmtag is a simulation-backed reimplementation of mmTag, a
// millimeter-wave backscatter network (SIGCOMM 2021 reconstruction —
// see DESIGN.md for provenance): ultra-low-power tags with passive Van
// Atta retro-reflective arrays piggyback uplink data on a 24 GHz access
// point's carrier, reaching tens of Mb/s at a few nJ/bit.
//
// The package is a thin facade over the full substrate in internal/:
// build a System, place Tags, then Run an inventory round or query link
// budgets directly. Everything is deterministic under a seed.
//
//	sys, _ := mmtag.NewSystem(mmtag.SystemConfig{})
//	sys.AddTag(mmtag.TagSpec{ID: 1, DistanceM: 3})
//	report, _ := sys.Run(mmtag.RunConfig{Duration: 0.1})
//	fmt.Println(report.GoodputBps)
package mmtag

import (
	"fmt"
	"io"

	"mmtag/internal/ap"
	"mmtag/internal/channel"
	"mmtag/internal/fault"
	"mmtag/internal/mac"
	"mmtag/internal/obs"
	"mmtag/internal/par"
	"mmtag/internal/rfmath"
	"mmtag/internal/sim"
	"mmtag/internal/tag"
	"mmtag/internal/trace"
	"mmtag/internal/vanatta"
)

// SystemConfig configures an mmTag deployment. Zero values select the
// reconstructed-testbed defaults (24 GHz, 20 dBm, 16-element AP array).
type SystemConfig struct {
	// FreqHz is the carrier frequency.
	FreqHz float64
	// TxPowerDBm is the AP transmit power.
	TxPowerDBm float64
	// APElements sizes the AP phased array.
	APElements int
	// NoiseFigureDB is the AP receiver noise figure.
	NoiseFigureDB float64
	// PathLossExponent selects a log-distance propagation model when
	// nonzero (2.0 reproduces free space; indoor NLOS is 2.5-4).
	PathLossExponent float64
}

// TagSpec places one tag in the deployment.
type TagSpec struct {
	// ID is the tag's 8-bit address (must be unique).
	ID uint8
	// Elements sizes the tag's Van Atta array (8 if zero).
	Elements int
	// Modulation names the backscatter alphabet: "ook" (default),
	// "bpsk", "qpsk" or "16qam".
	Modulation string
	// DistanceM is the AP-tag range (required, > 0).
	DistanceM float64
	// AzimuthDeg is the tag's bearing from the AP broadside.
	AzimuthDeg float64
	// OrientationDeg is the incidence angle at the tag.
	OrientationDeg float64
	// SwitchRiseTimeNs bounds the tag's switching speed (2 ns if zero).
	SwitchRiseTimeNs float64
}

// System is a configured deployment: one AP and its tags.
type System struct {
	cfg SystemConfig
	net *sim.Network
}

// NewSystem builds a deployment.
func NewSystem(cfg SystemConfig) (*System, error) {
	apCfg := ap.Config{
		FreqHz:        cfg.FreqHz,
		NoiseFigureDB: cfg.NoiseFigureDB,
		ArrayElements: cfg.APElements,
	}
	if cfg.TxPowerDBm != 0 {
		apCfg.TxPowerW = rfmath.FromDBm(cfg.TxPowerDBm)
	}
	a, err := ap.New(apCfg)
	if err != nil {
		return nil, err
	}
	var pl channel.PathLoss
	if cfg.PathLossExponent != 0 {
		pl = channel.NewLogDistance(a.Config().FreqHz, cfg.PathLossExponent)
	}
	net, err := sim.NewNetwork(a, pl)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, net: net}, nil
}

// AddTag places a tag per spec.
func (s *System) AddTag(spec TagSpec) error {
	if spec.Modulation == "" {
		spec.Modulation = "ook"
	}
	set, err := vanatta.ByName(spec.Modulation)
	if err != nil {
		return err
	}
	elements := spec.Elements
	if elements == 0 {
		elements = 8
	}
	arr, err := vanatta.New(vanatta.Config{Elements: elements, InsertionLossDB: 1.5})
	if err != nil {
		return err
	}
	rise := spec.SwitchRiseTimeNs
	if rise == 0 {
		rise = 2
	}
	dev, err := tag.New(tag.Config{
		ID:             spec.ID,
		Array:          arr,
		Modulation:     set,
		SwitchRiseTime: rise * 1e-9,
	})
	if err != nil {
		return err
	}
	return s.net.AddTag(sim.Placement{
		Device:         dev,
		DistanceM:      spec.DistanceM,
		AzimuthRad:     sim.Deg(spec.AzimuthDeg),
		OrientationRad: sim.Deg(spec.OrientationDeg),
	})
}

// TagCount returns the number of placed tags.
func (s *System) TagCount() int { return s.net.TagCount() }

// LinkReport summarizes one tag's link budget.
type LinkReport struct {
	TagID        uint8
	SNRdB        float64 // uplink SNR in a 10 MHz noise bandwidth
	EchoPowerDBm float64
	BestRate     string
	GoodputMbps  float64
}

// Link returns the analytic uplink budget for a tag, with the rate the
// link adaptation would choose.
func (s *System) Link(id uint8) (*LinkReport, error) {
	p, ok := s.net.Placement(id)
	if !ok {
		return nil, fmt.Errorf("mmtag: unknown tag %d", id)
	}
	snrDB, err := s.net.UplinkSNRdB(id, 10e6, 1)
	if err != nil {
		return nil, err
	}
	table := mac.DefaultRateTable()
	rate, _, err := mac.PickRate(table, 0.01, 600, func(r mac.Rate) float64 {
		snr, audible := s.net.SNR(id, p.AzimuthRad, r)
		if !audible {
			return 0
		}
		return snr
	})
	if err != nil {
		return nil, err
	}
	// Echo power back-computed from the SNR and the 10 MHz noise floor.
	noise := rfmath.NoiseFloorDBm(10e6, s.net.AP.Config().NoiseFigureDB)
	return &LinkReport{
		TagID:        id,
		SNRdB:        snrDB,
		EchoPowerDBm: noise + snrDB,
		BestRate:     rate.String(),
		GoodputMbps:  rate.Goodput() / 1e6,
	}, nil
}

// RunConfig parameterizes a Run.
type RunConfig struct {
	// Duration is the polling phase length in simulated seconds (1 s if
	// zero).
	Duration float64
	// SDM enables space-division multiplexing across beam-separated
	// tags.
	SDM bool
	// Seed drives all randomness (0 is a valid seed).
	Seed int64
	// Faults is a fault-injection spec (see fault.ParseSpec), e.g.
	// "blockage=30,death=0.25,ackloss=0.2". Empty injects nothing. A
	// faulted run wraps the radio in a deterministic fault injector and
	// enables the MAC's health/recovery machinery; the same seed and
	// spec reproduce the run byte-for-byte at any parallelism.
	Faults string
	// Trace, when non-nil, receives a text event timeline (discoveries
	// and polls) after the run completes.
	Trace io.Writer
	// TraceJSONL, when non-nil, receives the structured event/span log
	// as JSON lines — the machine format cmd/mmtag-trace analyzes.
	TraceJSONL io.Writer
	// CollectMetrics turns on the observability layer for this run:
	// counters, SNR and stage-duration histograms land on
	// Report.Metrics. Off (the default) costs nothing.
	CollectMetrics bool
	// Metrics, when non-nil, is the registry the run meters into
	// (implies CollectMetrics) — callers that serve metrics live pass
	// their own registry so scrapes see the run in flight.
	Metrics *MetricsRegistry
	// RunID, when non-empty, is stamped on every trace event and
	// published as the run_info metric, so multi-run logs and scrapes
	// stay attributable.
	RunID string
	// EventSink, when non-nil, receives every trace event live on the
	// emitting goroutine (e.g. an SSE broker's Publish). Setting it
	// forces event recording on even without Trace/TraceJSONL writers.
	EventSink func(TraceEvent)
}

// MetricsRegistry is the live metrics registry a metered Run fills;
// see RunConfig.Metrics.
type MetricsRegistry = obs.Registry

// TraceEvent is one structured trace event; see RunConfig.EventSink.
type TraceEvent = trace.Event

// Report is the outcome of a Run. It aliases the simulator's report;
// see sim.InventoryReport for field documentation.
type Report = sim.InventoryReport

// MetricsSnapshot is the metrics state a metered Run leaves on
// Report.Metrics; render it with WritePrometheus or WriteJSON.
type MetricsSnapshot = obs.Snapshot

// Run performs discovery followed by TDMA/SDM polling and returns the
// report.
func (s *System) Run(cfg RunConfig) (*Report, error) {
	plan, err := fault.ParseSpec(cfg.Faults)
	if err != nil {
		return nil, err
	}
	var rec *trace.Recorder
	if cfg.Trace != nil || cfg.TraceJSONL != nil || cfg.EventSink != nil {
		rec = trace.NewRecorder(100_000)
		if cfg.RunID != "" {
			rec.SetRun(cfg.RunID)
		}
		if cfg.EventSink != nil {
			rec.Tee(cfg.EventSink)
		}
	}
	var handle *obs.Handle
	if cfg.CollectMetrics || cfg.Metrics != nil {
		reg := cfg.Metrics
		if reg == nil {
			reg = obs.NewRegistry()
		}
		if cfg.RunID != "" {
			reg.GaugeVec("run_info",
				"Identity of the run this registry meters.", "run").
				With(cfg.RunID).Set(1)
		}
		if rec != nil {
			rec.SetDropHook(reg.Counter("trace_dropped_events_total",
				"Trace events discarded at the recorder bound.").Inc)
		}
		handle = obs.NewHandle(reg, obs.NewSpans(rec, nil, reg))
	}
	rep, err := sim.RunInventory(s.net, sim.InventoryConfig{
		Duration: cfg.Duration,
		SDM:      cfg.SDM,
		Seed:     cfg.Seed,
		Faults:   plan,
		Trace:    rec,
		Obs:      handle,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Trace != nil {
		if _, werr := io.WriteString(cfg.Trace, rec.Render()); werr != nil {
			return nil, werr
		}
	}
	if cfg.TraceJSONL != nil {
		if werr := rec.WriteJSONL(cfg.TraceJSONL); werr != nil {
			return nil, werr
		}
	}
	return rep, nil
}

// SweepReport aggregates a multi-seed replicate sweep; see
// sim.SweepReport for field documentation.
type SweepReport = sim.SweepReport

// SweepReplicate is one finished run of a sweep.
type SweepReplicate = sim.Replicate

// Sweep re-runs the same scenario under `replicates` independent RNG
// streams derived from cfg.Seed, sharded across `workers` goroutines
// (serial when workers <= 1). build must return a freshly-constructed
// System each call — replicates run concurrently and a System mutates
// during a run. The report is identical at any worker count.
//
// cfg.Trace, cfg.TraceJSONL and cfg.CollectMetrics are single-run
// sinks and must be unset.
func Sweep(build func() (*System, error), cfg RunConfig, replicates, workers int) (*SweepReport, error) {
	if build == nil {
		return nil, fmt.Errorf("mmtag: sweep requires a build function")
	}
	if cfg.Trace != nil || cfg.TraceJSONL != nil || cfg.CollectMetrics ||
		cfg.Metrics != nil || cfg.EventSink != nil {
		return nil, fmt.Errorf("mmtag: sweep cannot trace or collect metrics (single-run sinks)")
	}
	plan, err := fault.ParseSpec(cfg.Faults)
	if err != nil {
		return nil, err
	}
	pool := par.New(par.Config{Workers: workers})
	defer pool.Close()
	return sim.RunSweep(sim.SweepConfig{
		Base: sim.InventoryConfig{
			Duration: cfg.Duration,
			SDM:      cfg.SDM,
			Seed:     cfg.Seed,
			Faults:   plan,
			Pool:     pool,
		},
		Replicates: replicates,
		NewNetwork: func() (*sim.Network, error) {
			sys, err := build()
			if err != nil {
				return nil, err
			}
			return sys.net, nil
		},
	})
}

// EnergyPerBit returns the tag energy per uplink bit (joules) at a bit
// rate for a modulation name, using the calibrated node power model.
func EnergyPerBit(bitRate float64, modulation string) (float64, error) {
	set, err := vanatta.ByName(modulation)
	if err != nil {
		return 0, err
	}
	return tag.DefaultPowerModel().EnergyPerBitJ(bitRate, set.BitsPerSymbol()), nil
}

// MaxBitRate returns the switching-limited bit rate for a modulation
// and a switch rise time in nanoseconds.
func MaxBitRate(modulation string, riseTimeNs float64) (float64, error) {
	set, err := vanatta.ByName(modulation)
	if err != nil {
		return 0, err
	}
	return vanatta.MaxSymbolRate(riseTimeNs*1e-9) * float64(set.BitsPerSymbol()), nil
}
