package mmtag

import (
	"mmtag/internal/sim"
)

// MobileWaypoint anchors a moving tag's position at a time; the runner
// interpolates linearly between waypoints.
type MobileWaypoint struct {
	TimeS          float64
	DistanceM      float64
	AzimuthDeg     float64
	OrientationDeg float64
}

// BlockageSpec shadows the link by AttenuationDB (one-way) during
// [StartS, EndS).
type BlockageSpec struct {
	StartS, EndS  float64
	AttenuationDB float64
}

// MobilityConfig parameterizes RunMobile.
type MobilityConfig struct {
	// TagID selects which placed tag moves.
	TagID uint8
	// Waypoints is the trajectory (at least two, strictly increasing
	// times).
	Waypoints []MobileWaypoint
	// Blockage lists shadowing episodes.
	Blockage []BlockageSpec
	// StepMs is the polling cadence in milliseconds (1 if zero).
	StepMs float64
	// Seed drives all randomness.
	Seed int64
}

// MobileReport aliases the simulator's mobility report; see
// sim.MobileReport for field documentation.
type MobileReport = sim.MobileReport

// RunMobile drives one tag along a trajectory with beam tracking, link
// adaptation and ARQ, reporting per-step outcomes. The tag keeps its
// placed parameters until the run rewrites them from the trajectory.
func (s *System) RunMobile(cfg MobilityConfig) (*MobileReport, error) {
	tr := make([]sim.Waypoint, len(cfg.Waypoints))
	for i, w := range cfg.Waypoints {
		tr[i] = sim.Waypoint{
			Time:           w.TimeS,
			DistanceM:      w.DistanceM,
			AzimuthRad:     sim.Deg(w.AzimuthDeg),
			OrientationRad: sim.Deg(w.OrientationDeg),
		}
	}
	bl := make([]sim.BlockageEvent, len(cfg.Blockage))
	for i, b := range cfg.Blockage {
		bl[i] = sim.BlockageEvent{Start: b.StartS, End: b.EndS, AttenuationDB: b.AttenuationDB}
	}
	step := cfg.StepMs
	if step == 0 {
		step = 1
	}
	return sim.RunMobile(s.net, sim.MobileConfig{
		TagID:      cfg.TagID,
		Trajectory: tr,
		Blockage:   bl,
		StepS:      step * 1e-3,
		Seed:       cfg.Seed,
	})
}
